package pmemdimm

import (
	"testing"
	"testing/quick"

	"repro/internal/pram"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestColdReadGoesToMedia(t *testing.T) {
	d := New(DefaultConfig())
	done := d.Read(0, 0)
	if d.Stats().MediaReads != 1 {
		t.Fatal("cold read should miss to media")
	}
	// Cold read pays all lookups + firmware + media: far above bare PRAM.
	if done.Sub(0) < 3*pram.DefaultConfig().ReadLatency {
		t.Fatalf("cold DIMM read too fast: %v", done.Sub(0))
	}
}

func TestHotReadHitsSRAM(t *testing.T) {
	d := New(DefaultConfig())
	now := d.Read(0, 0)
	done := d.Read(now, 0)
	if d.Stats().SRAMHits != 1 {
		t.Fatal("second read should hit SRAM")
	}
	if done.Sub(now) >= d.Read(done, 1<<30).Sub(done) {
		t.Fatal("SRAM hit should be faster than a cold miss")
	}
}

func TestDRAMTierHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SRAMBlocks = 2
	d := New(cfg)
	now := d.Read(0, 0)
	// Push address 0's 256 B block out of SRAM but keep its 4 KB block in
	// DRAM.
	now = d.Read(now, 256)
	now = d.Read(now, 512)
	d.Read(now, 0)
	if d.Stats().DRAMHits == 0 {
		t.Fatal("expected a DRAM-tier hit")
	}
}

func TestWriteCombining(t *testing.T) {
	d := New(DefaultConfig())
	now := d.Write(0, 0)
	for i := uint64(1); i < 4; i++ {
		now = d.Write(now, i*64) // same 256 B block
	}
	if d.Stats().CombinedWrites != 3 {
		t.Fatalf("CombinedWrites = %d, want 3", d.Stats().CombinedWrites)
	}
}

func TestDIMMWritesFasterThanBarePRAM(t *testing.T) {
	// Figure 2b: thanks to internal buffering, DIMM-level writes beat
	// bare-metal PRAM writes by 2.3–6.1×.
	d := New(DefaultConfig())
	now := sim.Time(0)
	var total sim.Duration
	const n = 1000
	for i := 0; i < n; i++ {
		done := d.Write(now, uint64(i%32)*64) // high locality
		total += done.Sub(now)
		now = done
	}
	avg := total / n
	bare := pram.DefaultConfig().WriteLatency
	if avg*2 >= bare {
		t.Fatalf("avg DIMM write %v not clearly under bare PRAM write %v", avg, bare)
	}
}

func TestDIMMReadsSlowerAndNoisierThanBarePRAM(t *testing.T) {
	// Figure 2b: DIMM-level reads take ~2.9× longer than bare PRAM and
	// vary; bare PRAM reads are deterministic.
	d := New(DefaultConfig())
	rng := sim.NewRNG(5)
	now := sim.Time(0)
	for i := 0; i < 4000; i++ {
		// Random accesses over a span larger than the caches with a
		// locality mix.
		addr := uint64(rng.Intn(1 << 24))
		done := d.Read(now, addr)
		now = done
	}
	h := d.ReadLatency()
	bare := pram.DefaultConfig().ReadLatency
	ratio := float64(h.Mean()) / float64(bare)
	if ratio < 1.8 {
		t.Fatalf("DIMM/bare read ratio = %.2f, want clearly > 1", ratio)
	}
	if h.CoefficientOfVariation() < 0.05 {
		t.Fatalf("DIMM reads suspiciously deterministic: CoV=%v", h.CoefficientOfVariation())
	}
}

func TestDirtyEvictionWritesMedia(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SRAMBlocks = 2
	cfg.DRAMBlocks = 2
	d := New(cfg)
	now := sim.Time(0)
	for i := uint64(0); i < 8; i++ {
		now = d.Write(now, i*BufferBlock)
	}
	if d.Stats().MediaWrites == 0 {
		t.Fatal("dirty evictions never reached media")
	}
}

func TestFlushCleansDirtyState(t *testing.T) {
	d := New(DefaultConfig())
	now := sim.Time(0)
	for i := uint64(0); i < 16; i++ {
		now = d.Write(now, i*BufferBlock)
	}
	before := d.Stats().MediaWrites
	end := d.Flush(now)
	if !end.After(now) {
		t.Fatal("flush with dirty blocks must take time")
	}
	if d.Stats().MediaWrites <= before {
		t.Fatal("flush wrote nothing to media")
	}
	end2 := d.Flush(end)
	if end2 != end {
		t.Fatal("second flush should be free")
	}
}

func TestAccessDispatch(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, trace.Access{Op: trace.OpWrite, Addr: 0, Size: 64})
	d.Access(0, trace.Access{Op: trace.OpRead, Addr: 0, Size: 64})
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	l := newLRU(2)
	if _, ev := l.insert(1, false); ev {
		t.Fatal("no eviction expected")
	}
	l.insert(2, false)
	if _, ev := l.insert(3, false); !ev {
		t.Fatal("expected an eviction at capacity")
	}
	if _, ok := l.touch(1); ok {
		t.Fatal("evicted key still present")
	}
	if _, ok := l.touch(2); !ok {
		t.Fatal("surviving key lost")
	}
	if l.len() != 2 {
		t.Fatalf("len = %d", l.len())
	}
}

func TestLRUTouchRefreshesRecency(t *testing.T) {
	l := newLRU(2)
	l.insert(1, false)
	l.insert(2, false)
	l.touch(1) // 2 becomes LRU
	l.insert(3, false)
	if _, ok := l.touch(2); ok {
		t.Fatal("LRU order wrong: 2 should have been evicted")
	}
	if _, ok := l.touch(1); !ok {
		t.Fatal("LRU order wrong: 1 should have survived")
	}
}

func TestLRUDuplicateInsertKeepsDirty(t *testing.T) {
	l := newLRU(2)
	l.insert(1, true)
	l.insert(1, false)
	i, ok := l.touch(1)
	if !ok || !l.isDirty(i) {
		t.Fatal("dirty bit lost on duplicate insert")
	}
	if l.len() != 1 {
		t.Fatalf("duplicate insert grew the LRU: %d", l.len())
	}
}

func TestLRUDirtyCountAndFlush(t *testing.T) {
	l := newLRU(2)
	l.insert(1, true)
	l.insert(2, false)
	if l.dirty != 1 {
		t.Fatalf("dirty count = %d, want 1", l.dirty)
	}
	// Evicting the dirty block must decrement the count.
	l.insert(3, true) // evicts 1 (dirty), inserts 3 dirty
	if l.dirty != 1 {
		t.Fatalf("dirty count after dirty eviction = %d, want 1", l.dirty)
	}
	if n := l.flushAll(); n != 1 {
		t.Fatalf("flushAll = %d, want 1", n)
	}
	if l.dirty != 0 {
		t.Fatalf("dirty count after flush = %d, want 0", l.dirty)
	}
	if i, ok := l.touch(3); !ok || l.isDirty(i) {
		t.Fatal("flush must clear dirty bits without evicting")
	}
	// Re-dirtying after a flush works in the new epoch.
	i, _ := l.touch(3)
	l.markDirty(i)
	if l.dirty != 1 || !l.isDirty(i) {
		t.Fatal("markDirty after flush failed")
	}
}

// Property: LRU never exceeds capacity and completion times are monotone.
func TestDIMMInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := DefaultConfig()
		cfg.SRAMBlocks = 4
		cfg.DRAMBlocks = 4
		d := New(cfg)
		now := sim.Time(0)
		for _, o := range ops {
			addr := uint64(o) * 64
			var done sim.Time
			if o%2 == 0 {
				done = d.Read(now, addr)
			} else {
				done = d.Write(now, addr)
			}
			if done.Before(now) || d.sram.len() > 4 || d.dram.len() > 4 {
				return false
			}
			now = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDIMMSteadyStateAllocFree pins the access hot path: once the tier
// caches are warm and the latency histogram is pre-sized
// (sim.Histogram.Reserve), Read/Write/Access must not allocate. The obs
// layer samples these counters via CounterFunc, so the instrumented DIMM
// must stay as allocation-free as the bare one.
func TestDIMMSteadyStateAllocFree(t *testing.T) {
	d := New(Config{Seed: 1})
	rng := sim.NewRNG(2)
	now := sim.Time(0)
	// Warm both tiers to capacity so inserts only recycle slots.
	for i := 0; i < 3*4096; i++ {
		now = d.Access(now, trace.Access{Op: trace.OpRead, Addr: rng.Uint64()})
		now = d.Access(now, trace.Access{Op: trace.OpWrite, Addr: rng.Uint64()})
	}

	const rounds = 1000
	// +1: AllocsPerRun runs one unmeasured warm-up invocation.
	d.ReadLatency().Reserve(2 * (rounds + 1))
	allocs := testing.AllocsPerRun(rounds, func() {
		now = d.Access(now, trace.Access{Op: trace.OpRead, Addr: rng.Uint64()})
		now = d.Access(now, trace.Access{Op: trace.OpWrite, Addr: rng.Uint64()})
		now = d.Read(now, rng.Uint64())
	})
	if allocs != 0 {
		t.Fatalf("steady-state DIMM access allocates %.1f objects/op, want 0", allocs)
	}
}
