package pmemdimm

import (
	"testing"

	"repro/internal/sim"
)

func TestSectorReadWrite(t *testing.T) {
	d := New(DefaultConfig())
	s := NewSectorDevice(d)
	done := s.ReadSector(0, 0)
	if !done.After(0) {
		t.Fatal("no time charged")
	}
	// A 4 KB sector is far heavier than one cacheline access.
	lineDone := New(DefaultConfig()).Read(0, 0)
	if done.Sub(0) < 2*lineDone.Sub(0) {
		t.Fatalf("sector read (%v) should dwarf a line read (%v)",
			done.Sub(0), lineDone.Sub(0))
	}
	end := s.WriteSector(done, 1)
	if !end.After(done) {
		t.Fatal("write charged nothing")
	}
	r, w := s.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("stats = %d/%d", r, w)
	}
}

func TestSectorSyscallFloor(t *testing.T) {
	d := New(DefaultConfig())
	s := NewSectorDevice(d)
	done := s.ReadSector(0, 0)
	// Entry + exit syscall costs bound the latency from below.
	if done.Sub(0) < 2*s.SyscallCost {
		t.Fatalf("sector latency %v below the syscall floor", done.Sub(0))
	}
}

func TestSectorQueueDepthBackpressure(t *testing.T) {
	d := New(DefaultConfig())
	s := NewSectorDevice(d)
	s.QueueDepth = 2
	// Saturate the queue at t=0: later requests wait for slots.
	var last sim.Time
	for i := uint64(0); i < 8; i++ {
		done := s.ReadSector(0, i*1000)
		if done > last {
			last = done
		}
	}
	s2 := NewSectorDevice(New(DefaultConfig()))
	s2.QueueDepth = 32
	var last2 sim.Time
	for i := uint64(0); i < 8; i++ {
		done := s2.ReadSector(0, i*1000)
		if done > last2 {
			last2 = done
		}
	}
	if last <= last2 {
		t.Fatalf("qd=2 (%v) should finish after qd=32 (%v)", last.Sub(0), last2.Sub(0))
	}
}

func TestSectorString(t *testing.T) {
	s := NewSectorDevice(New(DefaultConfig()))
	if s.String() == "" {
		t.Fatal("empty String")
	}
}
