package pmemdimm

import (
	"testing"

	"repro/internal/snapshot"
)

// TestCloneCompleteness pins each cloned struct's field list: a new
// mutable field fails here until the clone handles it.
func TestCloneCompleteness(t *testing.T) {
	snapshot.CheckCovered(t, lru{},
		"cap", "items", "nodes", "head", "tail", "stamp", "dirty")
	snapshot.CheckCovered(t, DIMM{},
		"cfg", "rng", "sram", "dram", "busyUntil", "stats", "em", "readLat")
	snapshot.CheckCovered(t, SectorDevice{},
		"dimm", "SyscallCost", "QueueDepth", "inflight", "reads", "writes")
}
