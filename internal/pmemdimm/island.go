package pmemdimm

import "repro/internal/sim"

// IslandSpec places a PMEM DIMM on a memory island. Every request funnels
// through the on-DIMM load-store queue before the controller can even look
// at it, so LSQLatency is the fastest the DIMM can influence another
// island (SRAM lookup, write-combine and the media itself only add to it).
func (c Config) IslandSpec() sim.IslandSpec {
	lat := c.LSQLatency
	if lat <= 0 {
		lat = DefaultConfig().LSQLatency
	}
	return sim.IslandSpec{
		Class:           sim.IslandMemory,
		MinCrossLatency: lat,
	}
}
