package pmemdimm

import "slices"

// clone deep-copies an LRU tier: the index map, the node arena, and the
// list/flush-epoch scalars. Copying map entries into a fresh map is
// order-insensitive — the clone holds the same key set regardless of
// iteration order — so the copy is deterministic.
func (l *lru) clone() *lru {
	if l == nil {
		return nil
	}
	items := make(map[uint64]int32, len(l.items))
	for k, v := range l.items {
		items[k] = v
	}
	return &lru{
		cap:   l.cap,
		items: items,
		nodes: slices.Clone(l.nodes),
		head:  l.head,
		tail:  l.tail,
		stamp: l.stamp,
		dirty: l.dirty,
	}
}

// Clone returns a deep copy of the DIMM: RNG position, both LRU tier
// arenas, queue occupancy, stats, and the latency histogram. The energy
// meter pointer is carried over; platform forks rewire it afterwards.
func (d *DIMM) Clone() *DIMM {
	return &DIMM{
		cfg:       d.cfg,
		rng:       d.rng.Clone(),
		sram:      d.sram.clone(),
		dram:      d.dram.clone(),
		busyUntil: d.busyUntil,
		stats:     d.stats,
		em:        d.em,
		readLat:   d.readLat.Clone(),
	}
}

// Clone returns a deep copy of the block-layer view over a cloned DIMM.
func (s *SectorDevice) Clone() *SectorDevice {
	return &SectorDevice{
		dimm:        s.dimm.Clone(),
		SyscallCost: s.SyscallCost,
		QueueDepth:  s.QueueDepth,
		inflight:    slices.Clone(s.inflight),
		reads:       s.reads,
		writes:      s.writes,
	}
}
