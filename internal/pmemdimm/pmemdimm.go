// Package pmemdimm emulates a conventional (Optane-style) PMEM DIMM as
// reverse-engineered in Figure 2a: a load-store queue that reorders and
// write-combines up to the 256 B PRAM granule, a two-level inclusive
// SRAM+DRAM cache in front of the media, 4 KB DRAM-side buffering, and a
// firmware that performs device-level address translation.
//
// The point of this model is Figure 2b: the multi-buffer lookup and
// firmware path make DIMM-level writes *faster* than bare PRAM (they hit
// SRAM/DRAM), while DIMM-level reads become both slower (~3×) and
// non-deterministic, because the freshest copy may live in SRAM, DRAM, or
// the media, and each level costs a lookup.
package pmemdimm

import (
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Block granularities (Section II-A).
const (
	// MediaBlock is the physical access granularity of the DIMM's PRAM.
	MediaBlock = 256
	// BufferBlock is the DRAM-side buffering granule.
	BufferBlock = 4096
)

// Config parameterizes the DIMM emulation.
type Config struct {
	// SRAMBlocks is the capacity of the 256 B-block SRAM tier.
	SRAMBlocks int
	// DRAMBlocks is the capacity of the 4 KB-block DRAM tier.
	DRAMBlocks int

	LSQLatency      sim.Duration // queue + reorder stage
	SRAMLookup      sim.Duration // tag check + read of the SRAM tier
	DRAMLookup      sim.Duration // tag check + read of the DRAM tier
	FirmwareBase    sim.Duration // translation + scheduling by firmware
	FirmwareJitter  sim.Duration // stddev of firmware latency noise
	MediaRead       sim.Duration // one 256 B media read (all granules)
	MediaWrite      sim.Duration // one 256 B media program
	WriteCombineAck sim.Duration // ack for a combined (absorbed) write

	Seed uint64
}

// DefaultConfig produces the Figure 2b shape against a 55 ns bare-PRAM
// read: DIMM-level reads average ~3× bare PRAM with heavy variance, and
// DIMM-level writes land well under bare-PRAM writes.
func DefaultConfig() Config {
	return Config{
		SRAMBlocks:      64,
		DRAMBlocks:      4096,
		LSQLatency:      sim.FromNanoseconds(10),
		SRAMLookup:      sim.FromNanoseconds(20),
		DRAMLookup:      sim.FromNanoseconds(60),
		FirmwareBase:    sim.FromNanoseconds(40),
		FirmwareJitter:  sim.FromNanoseconds(25),
		MediaRead:       sim.FromNanoseconds(110),
		MediaWrite:      sim.FromNanoseconds(300),
		WriteCombineAck: sim.FromNanoseconds(15),
		Seed:            1,
	}
}

// lru is a tiny ordered map used for both cache tiers. Nodes live in a
// slice-backed arena linked by index, so the steady state allocates
// nothing: evicted slots are reused in place for the incoming key.
//
// Dirtiness is epoch-stamped rather than stored as a bool: a node is dirty
// iff its dirtyStamp is newer than the tier's last flush epoch. Clearing
// every dirty bit (Flush) is then a single epoch increment, and the tier
// maintains a running dirty count so Flush never walks the map.
type lru struct {
	cap   int
	items map[uint64]int32
	nodes []lruNode
	head  int32 // most recent, -1 if empty
	tail  int32 // least recent, -1 if empty

	stamp uint64 // flush epoch; node dirty iff dirtyStamp > stamp
	dirty int    // live dirty nodes
}

type lruNode struct {
	key        uint64
	dirtyStamp uint64
	prev, next int32
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		items: make(map[uint64]int32, capacity),
		nodes: make([]lruNode, 0, capacity),
		head:  -1,
		tail:  -1,
	}
}

//lightpc:zeroalloc
func (l *lru) unlink(i int32) {
	n := &l.nodes[i]
	if n.prev >= 0 {
		l.nodes[n.prev].next = n.next
	} else {
		l.head = n.next
	}
	if n.next >= 0 {
		l.nodes[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

//lightpc:zeroalloc
func (l *lru) pushFront(i int32) {
	n := &l.nodes[i]
	n.prev = -1
	n.next = l.head
	if l.head >= 0 {
		l.nodes[l.head].prev = i
	}
	l.head = i
	if l.tail < 0 {
		l.tail = i
	}
}

//lightpc:zeroalloc
func (l *lru) isDirty(i int32) bool { return l.nodes[i].dirtyStamp > l.stamp }

// markDirty flags the node dirty in the current epoch.
//
//lightpc:zeroalloc
func (l *lru) markDirty(i int32) {
	if n := &l.nodes[i]; n.dirtyStamp <= l.stamp {
		n.dirtyStamp = l.stamp + 1
		l.dirty++
	}
}

// touch looks the key up and refreshes recency.
//
//lightpc:zeroalloc
func (l *lru) touch(key uint64) (int32, bool) {
	i, ok := l.items[key]
	if !ok {
		return -1, false
	}
	l.unlink(i)
	l.pushFront(i)
	return i, true
}

// insert adds key, reporting whether a block was evicted to make room and
// whether that block was dirty.
//
//lightpc:zeroalloc
func (l *lru) insert(key uint64, dirty bool) (evictedDirty, evicted bool) {
	if i, ok := l.items[key]; ok {
		if dirty {
			l.markDirty(i)
		}
		l.unlink(i)
		l.pushFront(i)
		return false, false
	}
	var i int32
	if len(l.items) >= l.cap {
		// Reuse the LRU victim's slot for the incoming key.
		i = l.tail
		n := &l.nodes[i]
		evicted = true
		evictedDirty = n.dirtyStamp > l.stamp
		if evictedDirty {
			l.dirty--
		}
		l.unlink(i)
		//lint:allow zeroalloc eviction keeps the map at fixed size; no growth
		delete(l.items, n.key)
		n.key = key
		n.dirtyStamp = 0
	} else {
		i = int32(len(l.nodes))
		//lint:allow zeroalloc the node arena fills once, up to the fixed capacity
		l.nodes = append(l.nodes, lruNode{key: key, prev: -1, next: -1})
	}
	if dirty {
		l.markDirty(i)
	}
	//lint:allow zeroalloc map size is bounded by the tier capacity; steady state reuses evicted slots
	l.items[key] = i
	l.pushFront(i)
	return evictedDirty, evicted
}

// flushAll clears every dirty bit in O(1) by advancing the epoch and
// returns how many nodes were dirty.
func (l *lru) flushAll() int {
	n := l.dirty
	l.stamp++
	l.dirty = 0
	return n
}

func (l *lru) len() int { return len(l.items) }

// Stats counts the DIMM's internal traffic.
type Stats struct {
	Reads, Writes             uint64
	SRAMHits, DRAMHits        uint64
	MediaReads, MediaWrites   uint64
	CombinedWrites, Evictions uint64
}

// DIMM is the emulated PMEM module.
type DIMM struct {
	cfg  Config
	rng  *sim.RNG
	sram *lru // 256 B blocks
	dram *lru // 4 KB blocks

	busyUntil sim.Time // LSQ head-of-line serialization
	stats     Stats
	em        *energy.Meter // nil = energy accounting disabled

	readLat *sim.Histogram
}

// New builds the DIMM.
func New(cfg Config) *DIMM {
	if cfg.SRAMBlocks <= 0 {
		cfg.SRAMBlocks = 64
	}
	if cfg.DRAMBlocks <= 0 {
		cfg.DRAMBlocks = 4096
	}
	return &DIMM{
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed),
		sram:    newLRU(cfg.SRAMBlocks),
		dram:    newLRU(cfg.DRAMBlocks),
		readLat: sim.NewHistogram(),
	}
}

// Config reports the configuration.
func (d *DIMM) Config() Config { return d.cfg }

// SetMeter attaches an energy meter charged per internal-hierarchy op
// (SRAM/DRAM hits, media reads/programs, combined writes; nil detaches).
func (d *DIMM) SetMeter(m *energy.Meter) { d.em = m }

//lightpc:zeroalloc
func (d *DIMM) firmware() sim.Duration {
	j := d.rng.Norm(float64(d.cfg.FirmwareBase), float64(d.cfg.FirmwareJitter))
	if j < float64(d.cfg.FirmwareBase)/2 {
		j = float64(d.cfg.FirmwareBase) / 2
	}
	return sim.Duration(j)
}

// evictDirty accounts a dirty eviction: the media program drains in the
// background (it occupies the LSQ, not the requester's critical path).
//
//lightpc:zeroalloc
func (d *DIMM) evictDirty(dirty, evicted bool) {
	if !evicted {
		return
	}
	d.stats.Evictions++
	if dirty {
		d.stats.MediaWrites++
		d.em.Op(energy.PMEMMediaWrite)
		d.busyUntil = d.busyUntil.Add(d.cfg.MediaWrite / 4)
	}
}

// Read services a 64 B read and returns its completion time. The latency
// depends on which tier holds the freshest copy — the source of the
// non-determinism in Figure 2b.
//
//lightpc:zeroalloc
func (d *DIMM) Read(now sim.Time, addr uint64) sim.Time {
	d.stats.Reads++
	start := sim.Max(now, d.busyUntil)
	lat := d.cfg.LSQLatency + d.cfg.SRAMLookup

	mblock := addr / MediaBlock
	bblock := addr / BufferBlock
	if _, ok := d.sram.touch(mblock); ok {
		d.stats.SRAMHits++
		d.em.Op(energy.PMEMSRAMHit)
	} else if _, ok := d.dram.touch(bblock); ok {
		// SRAM miss, DRAM hit: pay the second lookup and refill SRAM
		// (inclusive).
		d.stats.DRAMHits++
		d.em.Op(energy.PMEMDRAMHit)
		lat += d.cfg.DRAMLookup
		d.evictDirty(d.sram.insert(mblock, false))
	} else {
		// Miss everywhere: firmware translation + media read, filling
		// both tiers.
		lat += d.cfg.DRAMLookup + d.firmware() + d.cfg.MediaRead
		d.stats.MediaReads++
		d.em.Op(energy.PMEMMediaRead)
		d.evictDirty(d.dram.insert(bblock, false))
		d.evictDirty(d.sram.insert(mblock, false))
	}
	done := start.Add(lat)
	d.busyUntil = start.Add(d.cfg.LSQLatency) // LSQ frees after issue
	d.readLat.Add(done.Sub(now))
	return done
}

// Write services a 64 B write. Writes are posted: the LSQ combines
// sub-granule writes into the SRAM's 256 B read-modify buffers and the
// dirty state drains to the media in the background, so the
// acknowledgement is quick — faster than bare PRAM and often faster than
// DRAM (Figure 2b). The cost resurfaces as LSQ occupancy that delays
// subsequent requests.
//
//lightpc:zeroalloc
func (d *DIMM) Write(now sim.Time, addr uint64) sim.Time {
	d.stats.Writes++
	start := sim.Max(now, d.busyUntil)
	lat := d.cfg.LSQLatency + d.cfg.WriteCombineAck

	mblock := addr / MediaBlock
	bblock := addr / BufferBlock
	if i, ok := d.sram.touch(mblock); ok {
		// Combined into the open 256 B block.
		d.stats.CombinedWrites++
		d.em.Op(energy.PMEMCombinedWrite)
		d.sram.markDirty(i)
	} else {
		// Allocate in SRAM: the ack pays the allocation lookup; the
		// read-modify and DRAM-tier bookkeeping happen off the ack path
		// but occupy the device.
		lat += d.cfg.SRAMLookup
		occupancy := d.cfg.SRAMLookup
		if _, ok := d.dram.touch(bblock); !ok {
			occupancy += d.cfg.DRAMLookup + d.firmware()
			d.evictDirty(d.dram.insert(bblock, true))
		} else {
			d.dram.insert(bblock, true)
		}
		d.evictDirty(d.sram.insert(mblock, true))
		d.busyUntil = start.Add(occupancy)
	}
	done := start.Add(lat)
	if d.busyUntil < start.Add(d.cfg.LSQLatency) {
		d.busyUntil = start.Add(d.cfg.LSQLatency)
	}
	return done
}

// Flush writes every dirty block back to the media — the device-side work
// behind pmem_persist/eADR-style synchronization. It returns the completion
// time. Both tiers clear in O(1) via their flush epochs; only the DRAM
// tier's dirty 4 KB blocks cost media programs (the SRAM tier is inclusive,
// so its lines land inside those blocks).
func (d *DIMM) Flush(now sim.Time) sim.Time {
	d.sram.flushAll()
	dirty := d.dram.flushAll()
	// Dirty 4 KB blocks stream to the media; overlap factor 4 models the
	// DIMM's internal banking.
	lat := sim.Duration(dirty) * d.cfg.MediaWrite / 4
	d.stats.MediaWrites += uint64(dirty)
	d.em.OpN(energy.PMEMMediaWrite, uint64(dirty))
	done := sim.Max(now, d.busyUntil).Add(lat)
	d.busyUntil = done
	return done
}

// Access dispatches by op.
func (d *DIMM) Access(now sim.Time, a trace.Access) sim.Time {
	if a.Op == trace.OpWrite {
		return d.Write(now, a.Addr)
	}
	return d.Read(now, a.Addr)
}

// Stats returns a copy of the counters.
func (d *DIMM) Stats() Stats { return d.stats }

// ReadLatency exposes the read-latency distribution (Fig 2b data).
func (d *DIMM) ReadLatency() *sim.Histogram { return d.readLat }
