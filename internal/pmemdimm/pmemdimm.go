// Package pmemdimm emulates a conventional (Optane-style) PMEM DIMM as
// reverse-engineered in Figure 2a: a load-store queue that reorders and
// write-combines up to the 256 B PRAM granule, a two-level inclusive
// SRAM+DRAM cache in front of the media, 4 KB DRAM-side buffering, and a
// firmware that performs device-level address translation.
//
// The point of this model is Figure 2b: the multi-buffer lookup and
// firmware path make DIMM-level writes *faster* than bare PRAM (they hit
// SRAM/DRAM), while DIMM-level reads become both slower (~3×) and
// non-deterministic, because the freshest copy may live in SRAM, DRAM, or
// the media, and each level costs a lookup.
package pmemdimm

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Block granularities (Section II-A).
const (
	// MediaBlock is the physical access granularity of the DIMM's PRAM.
	MediaBlock = 256
	// BufferBlock is the DRAM-side buffering granule.
	BufferBlock = 4096
)

// Config parameterizes the DIMM emulation.
type Config struct {
	// SRAMBlocks is the capacity of the 256 B-block SRAM tier.
	SRAMBlocks int
	// DRAMBlocks is the capacity of the 4 KB-block DRAM tier.
	DRAMBlocks int

	LSQLatency      sim.Duration // queue + reorder stage
	SRAMLookup      sim.Duration // tag check + read of the SRAM tier
	DRAMLookup      sim.Duration // tag check + read of the DRAM tier
	FirmwareBase    sim.Duration // translation + scheduling by firmware
	FirmwareJitter  sim.Duration // stddev of firmware latency noise
	MediaRead       sim.Duration // one 256 B media read (all granules)
	MediaWrite      sim.Duration // one 256 B media program
	WriteCombineAck sim.Duration // ack for a combined (absorbed) write

	Seed uint64
}

// DefaultConfig produces the Figure 2b shape against a 55 ns bare-PRAM
// read: DIMM-level reads average ~3× bare PRAM with heavy variance, and
// DIMM-level writes land well under bare-PRAM writes.
func DefaultConfig() Config {
	return Config{
		SRAMBlocks:      64,
		DRAMBlocks:      4096,
		LSQLatency:      sim.FromNanoseconds(10),
		SRAMLookup:      sim.FromNanoseconds(20),
		DRAMLookup:      sim.FromNanoseconds(60),
		FirmwareBase:    sim.FromNanoseconds(40),
		FirmwareJitter:  sim.FromNanoseconds(25),
		MediaRead:       sim.FromNanoseconds(110),
		MediaWrite:      sim.FromNanoseconds(300),
		WriteCombineAck: sim.FromNanoseconds(15),
		Seed:            1,
	}
}

// lru is a tiny ordered map used for both cache tiers.
type lru struct {
	cap   int
	items map[uint64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        uint64
	dirty      bool
	prev, next *lruNode
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, items: make(map[uint64]*lruNode, capacity)}
}

func (l *lru) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lru) pushFront(n *lruNode) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// touch looks the key up and refreshes recency.
func (l *lru) touch(key uint64) (*lruNode, bool) {
	n, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.unlink(n)
	l.pushFront(n)
	return n, true
}

// insert adds key, returning the evicted node (if any).
func (l *lru) insert(key uint64, dirty bool) (evicted *lruNode) {
	if n, ok := l.items[key]; ok {
		n.dirty = n.dirty || dirty
		l.unlink(n)
		l.pushFront(n)
		return nil
	}
	if len(l.items) >= l.cap {
		evicted = l.tail
		l.unlink(evicted)
		delete(l.items, evicted.key)
	}
	n := &lruNode{key: key, dirty: dirty}
	l.items[key] = n
	l.pushFront(n)
	return evicted
}

func (l *lru) len() int { return len(l.items) }

// Stats counts the DIMM's internal traffic.
type Stats struct {
	Reads, Writes             uint64
	SRAMHits, DRAMHits        uint64
	MediaReads, MediaWrites   uint64
	CombinedWrites, Evictions uint64
}

// DIMM is the emulated PMEM module.
type DIMM struct {
	cfg  Config
	rng  *sim.RNG
	sram *lru // 256 B blocks
	dram *lru // 4 KB blocks

	busyUntil sim.Time // LSQ head-of-line serialization
	stats     Stats

	readLat *sim.Histogram
}

// New builds the DIMM.
func New(cfg Config) *DIMM {
	if cfg.SRAMBlocks <= 0 {
		cfg.SRAMBlocks = 64
	}
	if cfg.DRAMBlocks <= 0 {
		cfg.DRAMBlocks = 4096
	}
	return &DIMM{
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed),
		sram:    newLRU(cfg.SRAMBlocks),
		dram:    newLRU(cfg.DRAMBlocks),
		readLat: sim.NewHistogram(),
	}
}

// Config reports the configuration.
func (d *DIMM) Config() Config { return d.cfg }

func (d *DIMM) firmware() sim.Duration {
	j := d.rng.Norm(float64(d.cfg.FirmwareBase), float64(d.cfg.FirmwareJitter))
	if j < float64(d.cfg.FirmwareBase)/2 {
		j = float64(d.cfg.FirmwareBase) / 2
	}
	return sim.Duration(j)
}

// evictDirty accounts a dirty eviction: the media program drains in the
// background (it occupies the LSQ, not the requester's critical path).
func (d *DIMM) evictDirty(n *lruNode) {
	if n == nil {
		return
	}
	d.stats.Evictions++
	if n.dirty {
		d.stats.MediaWrites++
		d.busyUntil = d.busyUntil.Add(d.cfg.MediaWrite / 4)
	}
}

// Read services a 64 B read and returns its completion time. The latency
// depends on which tier holds the freshest copy — the source of the
// non-determinism in Figure 2b.
func (d *DIMM) Read(now sim.Time, addr uint64) sim.Time {
	d.stats.Reads++
	start := sim.Max(now, d.busyUntil)
	lat := d.cfg.LSQLatency + d.cfg.SRAMLookup

	mblock := addr / MediaBlock
	bblock := addr / BufferBlock
	if _, ok := d.sram.touch(mblock); ok {
		d.stats.SRAMHits++
	} else if _, ok := d.dram.touch(bblock); ok {
		// SRAM miss, DRAM hit: pay the second lookup and refill SRAM
		// (inclusive).
		d.stats.DRAMHits++
		lat += d.cfg.DRAMLookup
		d.evictDirty(d.sram.insert(mblock, false))
	} else {
		// Miss everywhere: firmware translation + media read, filling
		// both tiers.
		lat += d.cfg.DRAMLookup + d.firmware() + d.cfg.MediaRead
		d.stats.MediaReads++
		d.evictDirty(d.dram.insert(bblock, false))
		d.evictDirty(d.sram.insert(mblock, false))
	}
	done := start.Add(lat)
	d.busyUntil = start.Add(d.cfg.LSQLatency) // LSQ frees after issue
	d.readLat.Add(done.Sub(now))
	return done
}

// Write services a 64 B write. Writes are posted: the LSQ combines
// sub-granule writes into the SRAM's 256 B read-modify buffers and the
// dirty state drains to the media in the background, so the
// acknowledgement is quick — faster than bare PRAM and often faster than
// DRAM (Figure 2b). The cost resurfaces as LSQ occupancy that delays
// subsequent requests.
func (d *DIMM) Write(now sim.Time, addr uint64) sim.Time {
	d.stats.Writes++
	start := sim.Max(now, d.busyUntil)
	lat := d.cfg.LSQLatency + d.cfg.WriteCombineAck

	mblock := addr / MediaBlock
	bblock := addr / BufferBlock
	if n, ok := d.sram.touch(mblock); ok {
		// Combined into the open 256 B block.
		d.stats.CombinedWrites++
		n.dirty = true
	} else {
		// Allocate in SRAM: the ack pays the allocation lookup; the
		// read-modify and DRAM-tier bookkeeping happen off the ack path
		// but occupy the device.
		lat += d.cfg.SRAMLookup
		occupancy := d.cfg.SRAMLookup
		if _, ok := d.dram.touch(bblock); !ok {
			occupancy += d.cfg.DRAMLookup + d.firmware()
			d.evictDirty(d.dram.insert(bblock, true))
		} else {
			d.dram.insert(bblock, true)
		}
		d.evictDirty(d.sram.insert(mblock, true))
		d.busyUntil = start.Add(occupancy)
	}
	done := start.Add(lat)
	if d.busyUntil < start.Add(d.cfg.LSQLatency) {
		d.busyUntil = start.Add(d.cfg.LSQLatency)
	}
	return done
}

// Flush writes every dirty block back to the media — the device-side work
// behind pmem_persist/eADR-style synchronization. It returns the completion
// time.
func (d *DIMM) Flush(now sim.Time) sim.Time {
	lat := sim.Duration(0)
	for _, n := range d.sram.items {
		if n.dirty {
			n.dirty = false
		}
	}
	dirty := 0
	for _, n := range d.dram.items {
		if n.dirty {
			n.dirty = false
			dirty++
		}
	}
	// Dirty 4 KB blocks stream to the media; overlap factor 4 models the
	// DIMM's internal banking.
	lat = sim.Duration(dirty) * d.cfg.MediaWrite / 4
	d.stats.MediaWrites += uint64(dirty)
	done := sim.Max(now, d.busyUntil).Add(lat)
	d.busyUntil = done
	return done
}

// Access dispatches by op.
func (d *DIMM) Access(now sim.Time, a trace.Access) sim.Time {
	if a.Op == trace.OpWrite {
		return d.Write(now, a.Addr)
	}
	return d.Read(now, a.Addr)
}

// Stats returns a copy of the counters.
func (d *DIMM) Stats() Stats { return d.stats }

// ReadLatency exposes the read-latency distribution (Fig 2b data).
func (d *DIMM) ReadLatency() *sim.Histogram { return d.readLat }
