package pmemdimm

import (
	"fmt"

	"repro/internal/sim"
)

// SectorSize is the block-storage granule of PMEM's sector mode
// (Section II-A: the third provisioning mode, exposing the DIMM as a
// /dev block device).
const SectorSize = 4096

// SectorDevice wraps a PMEM DIMM as block storage: 4 KB sector I/O through
// the kernel block layer (syscall + request queue) into the DIMM's
// internal buffer hierarchy. This is the mode journaling file systems sit
// on — and the indirection LightPC removes entirely.
type SectorDevice struct {
	dimm *DIMM

	// SyscallCost is the block-layer entry/exit per request.
	SyscallCost sim.Duration
	// QueueDepth bounds in-flight requests; extras wait.
	QueueDepth int

	inflight []sim.Time

	reads, writes uint64
}

// NewSectorDevice provisions the DIMM in sector mode.
func NewSectorDevice(d *DIMM) *SectorDevice {
	return &SectorDevice{
		dimm:        d,
		SyscallCost: sim.FromNanoseconds(2000),
		QueueDepth:  32,
	}
}

// admit reserves a queue slot at or after now.
func (s *SectorDevice) admit(now sim.Time) sim.Time {
	if s.QueueDepth <= 0 {
		s.QueueDepth = 1
	}
	if len(s.inflight) < s.QueueDepth {
		s.inflight = append(s.inflight, now)
		return now
	}
	// Reuse the earliest-completing slot.
	best := 0
	for i, t := range s.inflight {
		if t < s.inflight[best] {
			best = i
		}
	}
	start := sim.Max(now, s.inflight[best])
	s.inflight[best] = start
	return start
}

func (s *SectorDevice) complete(slotStart, done sim.Time) {
	for i, t := range s.inflight {
		if t == slotStart {
			s.inflight[i] = done
			return
		}
	}
}

// sectorOp streams one 4 KB sector through the DIMM's 256 B media blocks.
func (s *SectorDevice) sectorOp(now sim.Time, lba uint64, write bool) sim.Time {
	start := s.admit(now).Add(s.SyscallCost)
	base := lba * SectorSize
	t := start
	for off := uint64(0); off < SectorSize; off += MediaBlock {
		if write {
			t = s.dimm.Write(t, base+off)
		} else {
			t = s.dimm.Read(t, base+off)
		}
	}
	s.complete(start.Add(-s.SyscallCost), t)
	return t.Add(s.SyscallCost) // completion path back through the block layer
}

// ReadSector reads one 4 KB block.
func (s *SectorDevice) ReadSector(now sim.Time, lba uint64) sim.Time {
	s.reads++
	return s.sectorOp(now, lba, false)
}

// WriteSector writes one 4 KB block.
func (s *SectorDevice) WriteSector(now sim.Time, lba uint64) sim.Time {
	s.writes++
	return s.sectorOp(now, lba, true)
}

// Stats reports sector I/O counts.
func (s *SectorDevice) Stats() (reads, writes uint64) { return s.reads, s.writes }

// String describes the device.
func (s *SectorDevice) String() string {
	return fmt.Sprintf("pmem-sector(qd=%d)", s.QueueDepth)
}
