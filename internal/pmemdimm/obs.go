package pmemdimm

import "repro/internal/obs"

// RegisterMetrics exposes the DIMM counters under prefix. Stats stays the
// raw struct the access paths increment; the registry samples it at export
// time, so registration costs the 0-allocs/op hot path nothing.
func (d *DIMM) RegisterMetrics(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.CounterFunc(prefix+"reads_total", "64 B reads serviced", func() uint64 { return d.stats.Reads })
	r.CounterFunc(prefix+"writes_total", "64 B writes serviced", func() uint64 { return d.stats.Writes })
	r.CounterFunc(prefix+"sram_hits_total", "reads served by the SRAM buffer", func() uint64 { return d.stats.SRAMHits })
	r.CounterFunc(prefix+"dram_hits_total", "reads served by the DRAM cache", func() uint64 { return d.stats.DRAMHits })
	r.CounterFunc(prefix+"media_reads_total", "reads that reached the PRAM media", func() uint64 { return d.stats.MediaReads })
	r.CounterFunc(prefix+"media_writes_total", "programs issued to the PRAM media", func() uint64 { return d.stats.MediaWrites })
	r.CounterFunc(prefix+"combined_writes_total", "sub-granule writes combined in the LSQ", func() uint64 { return d.stats.CombinedWrites })
	r.CounterFunc(prefix+"evictions_total", "cache blocks evicted to the media", func() uint64 { return d.stats.Evictions })
}
