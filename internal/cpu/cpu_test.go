package cpu

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// fixedBackend has constant read/write service times.
type fixedBackend struct {
	readLat, writeLat sim.Duration
	reads, writes     uint64
}

func (b *fixedBackend) Read(now sim.Time, addr uint64) sim.Time {
	b.reads++
	return now.Add(b.readLat)
}

func (b *fixedBackend) Write(now sim.Time, addr uint64) sim.Time {
	b.writes++
	return now.Add(b.writeLat)
}

func spec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing spec %s", name)
	}
	return s
}

func TestRunRetiresEverything(t *testing.T) {
	b := &fixedBackend{readLat: 100 * sim.Nanosecond, writeLat: 20 * sim.Nanosecond}
	gens := []workload.Generator{workload.NewSynthetic(spec(t, "AES"), 5000, 1)}
	res := Run(DefaultConfig(), 0, gens, b)
	if res.MemOps != 5000 {
		t.Fatalf("MemOps = %d", res.MemOps)
	}
	s, _ := workload.ByName("AES")
	want := 5000 * uint64(workload.GapCycles(s)+1)
	if res.Instructions != want {
		t.Fatalf("Instructions = %d, want %d", res.Instructions, want)
	}
	if res.Elapsed <= 0 || res.Cycles <= 0 {
		t.Fatal("no time elapsed")
	}
	if b.reads+b.writes != res.ReadMisses+res.WriteMisses {
		t.Fatal("backend traffic != misses")
	}
}

func TestSlowerBackendSlowsExecution(t *testing.T) {
	gens := func() []workload.Generator {
		return []workload.Generator{workload.NewSynthetic(spec(t, "mcf"), 20000, 3)}
	}
	fast := Run(DefaultConfig(), 0, gens(), &fixedBackend{readLat: 50 * sim.Nanosecond})
	slow := Run(DefaultConfig(), 0, gens(), &fixedBackend{readLat: 500 * sim.Nanosecond})
	if slow.Elapsed <= fast.Elapsed {
		t.Fatalf("slow backend not slower: %v vs %v", slow.Elapsed, fast.Elapsed)
	}
	if slow.StallFraction(1) <= fast.StallFraction(1) {
		t.Fatal("stall fraction should grow with memory latency")
	}
}

func TestIPCInPlausibleRange(t *testing.T) {
	b := &fixedBackend{readLat: 65 * sim.Nanosecond, writeLat: 15 * sim.Nanosecond}
	gens := []workload.Generator{workload.NewSynthetic(spec(t, "AES"), 20000, 1)}
	cfg := DefaultConfig()
	cfg.Cores = 1
	res := Run(cfg, 0, gens, b)
	ipc := res.IPC(1)
	// The paper's observed IPC band is roughly 0.2–0.7.
	if ipc < 0.1 || ipc > 1.5 {
		t.Fatalf("IPC = %v, outside plausible band", ipc)
	}
}

func TestFrequencyScalingRaisesStallFraction(t *testing.T) {
	// Figure 14: memory stalls take a growing share as the core speeds up.
	run := func(hz float64) float64 {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.FreqHz = hz
		b := &fixedBackend{readLat: 100 * sim.Nanosecond, writeLat: 20 * sim.Nanosecond}
		gens := []workload.Generator{workload.NewSynthetic(spec(t, "mcf"), 20000, 5)}
		return Run(cfg, 0, gens, b).StallFraction(1)
	}
	low := run(0.8e9)
	high := run(1.8e9)
	if high <= low {
		t.Fatalf("stall fraction did not grow with frequency: %.3f -> %.3f", low, high)
	}
}

func TestMultiCoreFasterThanSingle(t *testing.T) {
	b1 := &fixedBackend{readLat: 65 * sim.Nanosecond, writeLat: 15 * sim.Nanosecond}
	b8 := &fixedBackend{readLat: 65 * sim.Nanosecond, writeLat: 15 * sim.Nanosecond}
	s := spec(t, "Redis")
	cfg := DefaultConfig()
	single := Run(cfg, 0, Fanout(s, 1, 40000, 1), b1)
	eight := Run(cfg, 0, Fanout(s, 8, 40000, 1), b8)
	if eight.Elapsed*4 >= single.Elapsed {
		t.Fatalf("8-core run not much faster: %v vs %v", eight.Elapsed, single.Elapsed)
	}
}

func TestFanoutSingleThreadPinnedWithBackground(t *testing.T) {
	s := spec(t, "bzip2") // single-threaded per Table II
	gens := Fanout(s, 8, 1000, 1)
	if len(gens) != 8 {
		t.Fatalf("expected main + 7 background cores, got %d", len(gens))
	}
	if gens[0].Name() != "bzip2" {
		t.Fatalf("core 0 runs %q", gens[0].Name())
	}
	for _, g := range gens[1:] {
		if g.Name() != "kernel-threads" {
			t.Fatalf("expected kernel-thread background, got %q", g.Name())
		}
	}
	m := spec(t, "miniFE")
	gens = Fanout(m, 8, 1000, 1)
	if len(gens) != 8 || gens[7].Name() != "miniFE" {
		t.Fatalf("multi-threaded workload fanout wrong")
	}
}

func TestRunStartsAtGivenTime(t *testing.T) {
	b := &fixedBackend{readLat: 10 * sim.Nanosecond}
	gens := []workload.Generator{workload.NewSynthetic(spec(t, "AES"), 100, 1)}
	start := sim.Time(5 * sim.Millisecond)
	res := Run(DefaultConfig(), start, gens, b)
	if res.Elapsed <= 0 || res.Elapsed > sim.Millisecond {
		t.Fatalf("Elapsed = %v (should be relative to start)", res.Elapsed)
	}
}

func TestResultZeroDivisions(t *testing.T) {
	var r Result
	if r.IPC(0) != 0 || r.IPC(8) != 0 || r.StallFraction(0) != 0 {
		t.Fatal("zero-value Result must not divide by zero")
	}
}

func TestStatsMergedAcrossCores(t *testing.T) {
	b := &fixedBackend{readLat: 10 * sim.Nanosecond}
	s := spec(t, "miniFE")
	res := Run(DefaultConfig(), 0, Fanout(s, 4, 8000, 1), b)
	if res.Stats.Reads+res.Stats.Writes != res.MemOps {
		t.Fatalf("merged stats %d != memops %d",
			res.Stats.Reads+res.Stats.Writes, res.MemOps)
	}
}
