package cpu

import "repro/internal/sim"

// IslandSpec places a core in the parallel-simulation partition: each core
// (with its private L1 slice) is its own island. The fastest a core can
// influence anything outside itself is one clock cycle — every external
// effect (a store leaving the store buffer, a miss entering the NoC) takes
// at least that long — so one cycle is the core's cross-island lower bound.
func (c Config) IslandSpec() sim.IslandSpec {
	freq := c.FreqHz
	if freq <= 0 {
		freq = DefaultConfig().FreqHz
	}
	return sim.IslandSpec{
		Class:           sim.IslandCore,
		MinCrossLatency: sim.Cycles(1, freq),
	}
}
