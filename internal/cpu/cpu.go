// Package cpu models the prototype's multicore processor (Table I: eight
// RV64 7-stage out-of-order cores, 400 MHz on FPGA / 1.6 GHz signed-off
// ASIC) at the level the evaluation measures: instructions retired, cycles,
// IPC, and memory stall time.
//
// Cores consume workload reference streams. Pre-decided L1 hits retire at
// pipeline speed; misses go to the shared memory backend and stall the core
// for a configurable fraction of the service time (the out-of-order window
// hides the rest). Store misses are posted through a store buffer and stall
// only on acknowledgement backpressure.
package cpu

import (
	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes the processor.
type Config struct {
	Cores int
	// FreqHz is the core clock (Table I: 4e8 FPGA, 1.6e9 ASIC).
	FreqHz float64
	// HitCycles is the L1 hit cost visible to the pipeline.
	HitCycles int
	// ReadStallOverlap is the fraction of a read miss's service time the
	// core actually stalls (the OoO window hides the rest).
	ReadStallOverlap float64
	// WriteStallOverlap is the same for store acknowledgements (posted
	// through the store buffer, so much lower).
	WriteStallOverlap float64

	// Energy optionally holds one meter per core (energy.CPUCoreSpec
	// states). Run marks cores that drive a generator active and the rest
	// idle, then integrates every meter over the run window — all outside
	// the per-reference hot loop, so metering costs the loop nothing.
	Energy []*energy.Meter
}

// DefaultConfig is the FPGA prototype clocked at 400 MHz.
func DefaultConfig() Config {
	return Config{
		Cores:             8,
		FreqHz:            4e8,
		HitCycles:         2,
		ReadStallOverlap:  0.75,
		WriteStallOverlap: 0.30,
	}
}

// Result summarizes one run.
type Result struct {
	Instructions uint64
	MemOps       uint64
	ReadMisses   uint64
	WriteMisses  uint64

	// Elapsed is the wall-clock of the slowest core.
	Elapsed sim.Duration
	// Cycles is Elapsed expressed in core clocks.
	Cycles int64
	// StallTime is the summed memory stall across cores.
	StallTime sim.Duration

	// Stats merges the generators' traffic characterization.
	Stats trace.Stats
}

// IPC reports average per-core instructions per cycle.
func (r Result) IPC(cores int) float64 {
	if r.Cycles == 0 || cores == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles) / float64(cores)
}

// StallFraction reports the share of total core-time spent stalled on
// memory (Figure 14's y-axis).
func (r Result) StallFraction(cores int) float64 {
	total := sim.Duration(cores) * r.Elapsed
	if total == 0 {
		return 0
	}
	return float64(r.StallTime) / float64(total)
}

// Run executes one generator per core against the shared backend, starting
// at time start, and returns the merged result. Cores are interleaved in
// simulated-time order so backend contention is realistic.
//
// References are pulled in batches (workload.FillBatch): each core
// prefetches up to workload.DefaultBatchSize references from its own
// generator and consumes them one by one. Because every core owns an
// independent generator, prefetching is invisible to results — the
// reference sequence each core sees, and the simulated-time interleaving
// across cores, are identical to per-reference pulls; only the number of
// interface calls changes.
func Run(cfg Config, start sim.Time, gens []workload.Generator, backend cache.Backend) Result {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.FreqHz <= 0 {
		cfg.FreqHz = 4e8
	}
	cores := make([]coreState, 0, len(gens))
	backing := make([]workload.Ref, len(gens)*workload.DefaultBatchSize)
	for i, g := range gens {
		cores = append(cores, coreState{
			gen:   g,
			batch: backing[i*workload.DefaultBatchSize : (i+1)*workload.DefaultBatchSize],
			now:   start,
		})
	}

	il := &interleaver{cfg: cfg, cores: cores, backend: backend}

	// Per-instruction-count cycle durations repeat endlessly (synthetic
	// compute gaps are capped well under the table size), so cache the exact
	// sim.Cycles results instead of redoing the float conversion per ref.
	// The hit cost is loop-invariant.
	for i := range il.cycleLUT {
		il.cycleLUT[i] = sim.Cycles(int64(i), cfg.FreqHz)
	}
	il.hitDur = sim.Cycles(int64(cfg.HitCycles), cfg.FreqHz)

	il.order = make([]int32, len(cores))
	for i := range il.order {
		il.order[i] = int32(i)
	}

	// Charge-on-transition energy states: a core with a generator runs
	// active for the whole window (the busy-load convention the system
	// Watts curve uses), the rest sit idle. Spare meters beyond the core
	// count stay in whatever state SnG left them.
	for i, m := range cfg.Energy {
		if i < len(gens) {
			m.SetState(start, energy.CPUActive)
		} else {
			m.SetState(start, energy.CPUIdle)
		}
	}

	var res Result
	il.run(&res)

	end := start
	for i := range cores {
		end = sim.Max(end, cores[i].now)
	}
	for _, m := range cfg.Energy {
		m.Sync(end)
	}
	res.Elapsed = end.Sub(start)
	res.Cycles = res.Elapsed.ToCycles(cfg.FreqHz)
	for _, g := range gens {
		if sg, ok := g.(interface{ Stats() trace.Stats }); ok {
			st := sg.Stats()
			res.Stats.Merge(&st)
		}
	}
	return res
}

// coreState tracks one core's reference stream and local clock.
type coreState struct {
	gen   workload.Generator
	batch []workload.Ref // window into the shared backing buffer
	pos   int            // next unconsumed ref
	fill  int            // valid refs in batch
	now   sim.Time
}

// interleaver advances the active cores in simulated-time order against
// the shared backend. order holds the active core indices sorted by
// (now, index): the head is always the core the old argmin scan would pick
// (strict Before comparison = lowest index wins ties), maintained
// incrementally by re-inserting the advanced core instead of rescanning
// every ref.
type interleaver struct {
	cfg     Config
	cores   []coreState
	order   []int32
	backend cache.Backend

	cycleLUT [128]sim.Duration
	hitDur   sim.Duration
}

// reinsert sinks the advanced head core to its sorted position; only the
// head's time changes per iteration, so the rest of order stays sorted.
//
//lightpc:zeroalloc
func (il *interleaver) reinsert(ci int32) {
	t := il.cores[ci].now
	j := 0
	for j+1 < len(il.order) {
		ni := il.order[j+1]
		nt := il.cores[ni].now
		if t.Before(nt) || (t == nt && ci < ni) {
			break
		}
		il.order[j] = ni
		j++
	}
	il.order[j] = ci
}

// run consumes every reference from every core, accumulating into res.
// This is the per-ref hot loop behind BenchmarkRunHot: it may not allocate.
//
//lightpc:zeroalloc
func (il *interleaver) run(res *Result) {
	for len(il.order) > 0 {
		// Advance the core that is earliest in simulated time.
		ci := il.order[0]
		c := &il.cores[ci]
		if c.pos == c.fill {
			//lint:allow zeroalloc refilling steps the generator, which owns its allocation budget
			c.fill = workload.FillBatch(c.gen, c.batch)
			c.pos = 0
			if c.fill == 0 {
				copy(il.order, il.order[1:])
				il.order = il.order[:len(il.order)-1]
				continue
			}
		}
		ref := c.batch[c.pos]
		c.pos++
		// Retire the compute gap plus the memory instruction itself.
		instr := ref.ComputeCycles + 1
		res.Instructions += uint64(instr)
		res.MemOps++
		if instr >= 0 && instr < len(il.cycleLUT) {
			c.now = c.now.Add(il.cycleLUT[instr])
		} else {
			c.now = c.now.Add(sim.Cycles(int64(instr), il.cfg.FreqHz))
		}

		if ref.L1Hit {
			c.now = c.now.Add(il.hitDur)
			il.reinsert(ci)
			continue
		}
		if ref.Access.Op == trace.OpRead {
			res.ReadMisses++
			//lint:allow zeroalloc the backend is an interface by design; device implementations carry the fact
			done := il.backend.Read(c.now, ref.Access.Addr)
			stall := sim.Duration(float64(done.Sub(c.now)) * il.cfg.ReadStallOverlap)
			res.StallTime += stall
			c.now = c.now.Add(stall)
		} else {
			res.WriteMisses++
			//lint:allow zeroalloc the backend is an interface by design; device implementations carry the fact
			ack := il.backend.Write(c.now, ref.Access.Addr)
			stall := sim.Duration(float64(ack.Sub(c.now)) * il.cfg.WriteStallOverlap)
			res.StallTime += stall
			c.now = c.now.Add(stall)
		}
		il.reinsert(ci)
	}
}

// Fanout builds the generator set for a spec: multithreaded workloads get
// one synthetic stream per core; single-threaded ones are pinned to core 0
// with the ambient kernel-thread traffic of Section VI ("tens of kernel
// threads") on the remaining cores.
func Fanout(spec workload.Spec, cores int, sampleOps uint64, seed uint64) []workload.Generator {
	if spec.MultiThread && cores > 1 {
		per := sampleOps / uint64(cores)
		gens := make([]workload.Generator, 0, cores)
		for i := 0; i < cores; i++ {
			gens = append(gens, workload.NewSynthetic(spec, per, seed+uint64(i)*104729))
		}
		return gens
	}
	gens := []workload.Generator{workload.NewSynthetic(spec, sampleOps, seed)}
	for i := 1; i < cores; i++ {
		gens = append(gens, workload.NewBackground(sampleOps/4, seed+uint64(i)*7177))
	}
	return gens
}
