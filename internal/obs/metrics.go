package obs

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// MetricKind distinguishes the registered metric types.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing tally. The nil counter (handed out
// by a nil Registry) is the disabled counter: Inc/Add no-op at zero cost.
type Counter struct{ v uint64 }

// Inc adds one.
//
//lightpc:zeroalloc
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
//
//lightpc:zeroalloc
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value reports the tally.
//
//lightpc:zeroalloc
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable instantaneous value. The nil gauge no-ops.
type Gauge struct{ v float64 }

// Set replaces the value.
//
//lightpc:zeroalloc
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add shifts the value by d.
//
//lightpc:zeroalloc
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value reports the gauge.
//
//lightpc:zeroalloc
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// DefaultLatencyBuckets spans device hits (tens of ns) through the 16 ms
// ATX hold-up window — the upper bounds of a sim-time histogram.
func DefaultLatencyBuckets() []sim.Duration {
	return []sim.Duration{
		100 * sim.Nanosecond,
		1 * sim.Microsecond,
		10 * sim.Microsecond,
		100 * sim.Microsecond,
		1 * sim.Millisecond,
		4 * sim.Millisecond,
		16 * sim.Millisecond,
		100 * sim.Millisecond,
	}
}

// Histogram is a fixed-bucket sim-time histogram: cumulative bucket counts
// under static upper bounds, plus an exact sum. Unlike sim.Histogram it
// keeps no samples, so Observe is allocation-free. The nil histogram
// no-ops.
type Histogram struct {
	bounds []sim.Duration // ascending upper bounds; +Inf is implicit
	counts []uint64       // per-bound counts (not cumulative)
	inf    uint64         // samples above the last bound
	sum    sim.Duration
	n      uint64
}

// Observe records one sample.
//
//lightpc:zeroalloc
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	h.sum += d
	h.n++
	for i, b := range h.bounds {
		if d <= b {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count reports the total number of samples.
//
//lightpc:zeroalloc
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum reports the total of all samples.
//
//lightpc:zeroalloc
func (h *Histogram) Sum() sim.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Buckets reports (upper bound, cumulative count) pairs in bound order,
// excluding the implicit +Inf bucket (whose cumulative count is Count).
func (h *Histogram) Buckets() ([]sim.Duration, []uint64) {
	if h == nil {
		return nil, nil
	}
	cum := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return h.bounds, cum
}

// Metric is one registry entry: a name, help text, and exactly one backing
// instrument (direct counter/gauge/histogram, or a sampling func).
type Metric struct {
	Name string
	Help string
	Kind MetricKind

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() uint64
	gf func() float64
}

// Value samples the metric's scalar value (counter/gauge only).
func (m *Metric) Value() float64 {
	switch {
	case m.c != nil:
		return float64(m.c.v)
	case m.cf != nil:
		return float64(m.cf())
	case m.g != nil:
		return m.g.v
	case m.gf != nil:
		return m.gf()
	default:
		return 0
	}
}

// Hist exposes the backing histogram (nil for scalar metrics).
func (m *Metric) Hist() *Histogram { return m.h }

// Registry holds named metrics. The nil registry is the disabled registry:
// constructors return nil instruments (which themselves no-op) and
// registration funcs do nothing. Metrics are kept in an insertion-ordered
// slice with a name index — exports sort by name, never by map order.
type Registry struct {
	byName  map[string]int
	metrics []*Metric
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// add registers m, panicking on a duplicate name (two subsystems fighting
// over one metric is a wiring bug worth failing loudly on).
func (r *Registry) add(m *Metric) {
	if _, ok := r.byName[m.Name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.Name))
	}
	r.byName[m.Name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(&Metric{Name: name, Help: help, Kind: KindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.add(&Metric{Name: name, Help: help, Kind: KindGauge, g: g})
	return g
}

// Histogram registers and returns a sim-time histogram over the given
// ascending bucket bounds (nil means DefaultLatencyBuckets). Returns nil
// on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []sim.Duration) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
	r.add(&Metric{Name: name, Help: help, Kind: KindHistogram, h: h})
	return h
}

// CounterFunc registers a counter sampled from fn at export time — the
// bridge from existing stats structs (trace.Stats, psm.Stats, …) into the
// registry without moving their hot-path increments.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.add(&Metric{Name: name, Help: help, Kind: KindCounter, cf: fn})
}

// GaugeFunc registers a gauge sampled from fn at export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.add(&Metric{Name: name, Help: help, Kind: KindGauge, gf: fn})
}

// Len reports the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.metrics)
}

// Lookup returns the metric registered under name, or nil.
func (r *Registry) Lookup(name string) *Metric {
	if r == nil {
		return nil
	}
	if i, ok := r.byName[name]; ok {
		return r.metrics[i]
	}
	return nil
}

// RegisterTraceStats exposes a trace.Stats as registered metrics. Stats
// stays the plain-struct view the hot paths increment; the registry samples
// it at export time, so registration costs the hot paths nothing.
func RegisterTraceStats(r *Registry, prefix string, s *trace.Stats) {
	if r == nil || s == nil {
		return
	}
	r.CounterFunc(prefix+"reads_total", "memory loads issued by the program", func() uint64 { return s.Reads })
	r.CounterFunc(prefix+"writes_total", "memory stores issued by the program", func() uint64 { return s.Writes })
	r.CounterFunc(prefix+"rowbuffer_hits_total", "writes absorbed by an open PSM row buffer", func() uint64 { return s.RowBufferHits })
	r.CounterFunc(prefix+"rowbuffer_writes_total", "writes that reached the PSM", func() uint64 { return s.RowBufferWrites })
	r.CounterFunc(prefix+"dcache_read_hits_total", "D$ read hits", func() uint64 { return s.DReadHits })
	r.CounterFunc(prefix+"dcache_reads_total", "D$ read lookups", func() uint64 { return s.DReadTotal })
	r.CounterFunc(prefix+"dcache_write_hits_total", "D$ write hits", func() uint64 { return s.DWriteHits })
	r.CounterFunc(prefix+"dcache_writes_total", "D$ write lookups", func() uint64 { return s.DWriteTotal })
}

// RegisterEngine exposes a sim.Engine's scheduler counters: events
// dispatched, live queue depth, immediate-ring fast-path hits, and the
// high-water marks of the heap and arena.
func RegisterEngine(r *Registry, prefix string, e *sim.Engine) {
	if r == nil || e == nil {
		return
	}
	r.CounterFunc(prefix+"engine_dispatched_total", "events dispatched by the engine", func() uint64 { return e.Stats().Dispatched })
	r.CounterFunc(prefix+"engine_immediate_total", "events that took the zero-delay ring fast path", func() uint64 { return e.Stats().ImmediateHits })
	r.GaugeFunc(prefix+"engine_pending", "live events queued (canceled excluded)", func() float64 { return float64(e.Stats().Pending) })
	r.GaugeFunc(prefix+"engine_heap_depth_max", "high-water mark of the timer heap", func() float64 { return float64(e.Stats().MaxHeapDepth) })
	r.GaugeFunc(prefix+"engine_arena_slots", "event arena capacity (slots ever allocated)", func() float64 { return float64(e.Stats().ArenaSlots) })
}

// RegisterSnapshotStats exposes a snapshot.Stats fork accountant: how many
// platform forks ran and how many bytes of mutable state they duplicated.
// The totals are atomic sums, so they are identical at any -j worker count.
func RegisterSnapshotStats(r *Registry, prefix string, s *snapshot.Stats) {
	if r == nil || s == nil {
		return
	}
	r.CounterFunc(prefix+"snapshot_forks_total", "platform forks taken from snapshots", s.Forks)
	r.CounterFunc(prefix+"snapshot_bytes_total", "approximate bytes of mutable state duplicated by forks", s.Bytes)
}

// RegisterParallelEngine exposes a sim.ParallelEngine's coordinator
// counters plus every island's engine stats and barrier accounting. All
// values except the worker knob are pure functions of the simulation —
// identical at every -p — so dashboards built on them cannot leak
// scheduling noise.
func RegisterParallelEngine(r *Registry, prefix string, p *sim.ParallelEngine) {
	if r == nil || p == nil {
		return
	}
	r.GaugeFunc(prefix+"islands", "islands in the partition", func() float64 { return float64(p.Stats().Islands) })
	r.GaugeFunc(prefix+"workers", "resolved -p worker count (the knob, not a result)", func() float64 { return float64(p.Stats().Workers) })
	r.GaugeFunc(prefix+"lookahead_ps", "static epoch lookahead", func() float64 { return float64(p.Stats().Lookahead) })
	r.CounterFunc(prefix+"epochs_total", "epoch barriers crossed", func() uint64 { return p.Stats().Epochs })
	r.CounterFunc(prefix+"messages_total", "cross-island messages delivered", func() uint64 { return p.Stats().Messages })
	for i := 0; i < p.Islands(); i++ {
		il := p.Island(i)
		ip := fmt.Sprintf("%sisland%d_", prefix, i)
		RegisterEngine(r, ip, il.Engine())
		r.CounterFunc(ip+"sent_total", "cross-island messages emitted", func() uint64 { return il.Stats().Sent })
		r.CounterFunc(ip+"delivered_total", "cross-island messages received", func() uint64 { return il.Stats().Delivered })
		r.CounterFunc(ip+"idle_epochs_total", "epochs that dispatched nothing (barrier-bound)", func() uint64 { return il.Stats().IdleEpochs })
		r.GaugeFunc(ip+"barrier_stall_ps", "sim-time spent drained before epoch bounds", func() float64 { return float64(il.Stats().BarrierStall) })
	}
}
