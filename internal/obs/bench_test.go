package obs

import (
	"testing"

	"repro/internal/sim"
)

// The disabled (nil) instruments must cost nothing on hot paths: no
// allocations and only a nil check per call. These benchmarks are recorded
// in BENCH_SEED.json and gated by lightpc-perfdiff.

func BenchmarkTracerDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Begin(sim.Time(i), 0, "bench", "span")
		tr.End(sim.Time(i+1), id)
		tr.Instant(sim.Time(i), 0, "bench", "mark")
	}
}

func BenchmarkRegistryDisabledInstruments(b *testing.B) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(2)
		g.Set(float64(i))
		h.Observe(sim.Duration(i))
	}
}

func BenchmarkTracerEnabledSpan(b *testing.B) {
	tr := NewTracer()
	lane := tr.Lane("core0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Span(sim.Time(i), sim.Time(i+10), lane, "bench", "span")
		if tr.Len() >= 1<<16 {
			tr.Reset()
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_latency", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(sim.Duration(i%int(16*sim.Millisecond)) + 1)
	}
}
