package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exporters for the metrics registry: the Prometheus text exposition
// format and a JSON snapshot. Both iterate a name-sorted copy of the
// insertion-ordered metric slice — never a map — so output bytes are a
// pure function of the registered metrics and their values.

// sorted returns the metrics sorted by name.
func (r *Registry) sorted() []*Metric {
	if r == nil {
		return nil
	}
	ms := make([]*Metric, len(r.metrics))
	copy(ms, r.metrics)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return ms
}

// formatFloat renders v with the shortest round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// secondsOf converts a picosecond quantity to Prometheus' base unit.
func secondsOf(ps int64) float64 { return float64(ps) / 1e12 }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name. Sim-time histograms are
// exposed with `le` bounds and sums in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	for _, m := range r.sorted() {
		if m.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, strings.ReplaceAll(m.Help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
		switch m.Kind {
		case KindHistogram:
			h := m.h
			bounds, cum := h.Buckets()
			for i, bound := range bounds {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.Name, formatFloat(secondsOf(int64(bound))), cum[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.Name, h.Count())
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, formatFloat(secondsOf(int64(h.Sum()))))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, h.Count())
		case KindCounter:
			// Counters are integral; render them without float rounding.
			fmt.Fprintf(&b, "%s %d\n", m.Name, uint64(m.Value()))
		default:
			fmt.Fprintf(&b, "%s %s\n", m.Name, formatFloat(m.Value()))
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// PrometheusBytes renders the registry and returns the text.
func (r *Registry) PrometheusBytes() []byte {
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return b.Bytes()
}

// WriteJSON renders a machine-readable snapshot: a sorted array of
// {name, kind, help, value | histogram} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString("{\"metrics\":[")
	for i, m := range r.sorted() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "{\"name\":%s,\"kind\":%q,\"help\":%s",
			strconv.Quote(m.Name), m.Kind.String(), strconv.Quote(m.Help))
		if m.Kind == KindHistogram {
			h := m.h
			bounds, cum := h.Buckets()
			b.WriteString(",\"buckets\":[")
			for j, bound := range bounds {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "{\"le_ps\":%d,\"count\":%d}", int64(bound), cum[j])
			}
			fmt.Fprintf(&b, "],\"count\":%d,\"sum_ps\":%d}", h.Count(), int64(h.Sum()))
		} else {
			fmt.Fprintf(&b, ",\"value\":%s}", formatFloat(m.Value()))
		}
	}
	b.WriteString("\n]}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// JSONBytes renders the JSON snapshot and returns it.
func (r *Registry) JSONBytes() []byte {
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return b.Bytes()
}

// ValidatePrometheus checks that data parses as Prometheus text exposition
// format: every sample line is `name[{labels}] value` with a parseable
// value, and every sampled metric family is preceded by a TYPE line. It is
// the checker `make obs-smoke` runs over lightpc-obs output.
func ValidatePrometheus(data []byte) error {
	typed := make(map[string]string)
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			// "# TYPE <name> <kind>" / "# HELP <name> <text>"
			if len(f) >= 4 && f[1] == "TYPE" {
				switch f[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					typed[f[2]] = f[3]
				default:
					return fmt.Errorf("prometheus: line %d: unknown TYPE %q", lineNo, f[3])
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return fmt.Errorf("prometheus: line %d: malformed sample %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(f[len(f)-1], 64); err != nil {
			return fmt.Errorf("prometheus: line %d: bad value in %q: %v", lineNo, line, err)
		}
		name := f[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") && !strings.Contains(line, "}") {
				return fmt.Errorf("prometheus: line %d: unterminated labels in %q", lineNo, line)
			}
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if _, ok := typed[strings.TrimSuffix(name, suffix)]; ok {
					family = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("prometheus: line %d: sample %q without a TYPE declaration", lineNo, name)
		}
	}
	return nil
}
