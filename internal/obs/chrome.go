package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file renders tracers into the Chrome trace-event JSON format
// (the "JSON Array Format" inside an object container), which Perfetto and
// chrome://tracing open directly: every lane becomes a named thread row,
// every tracer a named process.
//
// The writer emits bytes by hand rather than through encoding/json so the
// output is a pure function of the recorded events: field order is fixed,
// timestamps are formatted with a fixed-width microsecond grammar, and
// events appear in record order. Same seed, same trace bytes.

// chromeTS formats a sim timestamp/duration (picoseconds) as Chrome's
// microsecond unit with fixed six-digit sub-microsecond precision.
func chromeTS(ps int64) string {
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	return fmt.Sprintf("%s%d.%06d", neg, ps/1_000_000, ps%1_000_000)
}

// jsonString escapes s as a JSON string literal.
func jsonString(s string) string { return strconv.Quote(s) }

// WriteChromeTrace renders the tracers into one Chrome trace-event JSON
// document. Each tracer contributes its events under its own pid (see
// SetPid) with per-lane thread metadata; tracers are emitted in argument
// order and events in record order, so the bytes are deterministic.
func WriteChromeTrace(w io.Writer, names []string, tracers ...*Tracer) error {
	if len(names) != 0 && len(names) != len(tracers) {
		return fmt.Errorf("obs: %d process names for %d tracers", len(names), len(tracers))
	}
	var b bytes.Buffer
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(s)
	}
	for i, t := range tracers {
		if t == nil {
			continue
		}
		pid := t.Pid()
		pname := "lightpc"
		if len(names) > 0 {
			pname = names[i]
		}
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jsonString(pname)))
		for lane, lname := range t.Lanes() {
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, lane, jsonString(lname)))
			// Pin the row order in Perfetto to the lane registration order.
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_sort_index","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
				pid, lane, lane))
		}
		for _, ev := range t.Events() {
			var line bytes.Buffer
			switch ev.Kind {
			case KindSpan:
				dur := int64(ev.Dur)
				if dur < 0 {
					dur = 0 // still-open span: clamp, keep the begin mark
				}
				fmt.Fprintf(&line, `{"ph":"X","name":%s,"cat":%s,"ts":%s,"dur":%s,"pid":%d,"tid":%d`,
					jsonString(ev.Name), jsonString(ev.Cat),
					chromeTS(int64(ev.Start)), chromeTS(dur), pid, ev.Lane)
			case KindInstant:
				fmt.Fprintf(&line, `{"ph":"i","s":"t","name":%s,"cat":%s,"ts":%s,"pid":%d,"tid":%d`,
					jsonString(ev.Name), jsonString(ev.Cat),
					chromeTS(int64(ev.Start)), pid, ev.Lane)
			case KindCounterSample:
				// Counter samples always carry args (the sampled value is
				// the whole point); an unset ArgName falls back to "value".
				argName := ev.ArgName
				if argName == "" {
					argName = "value"
				}
				fmt.Fprintf(&line, `{"ph":"C","name":%s,"cat":%s,"ts":%s,"pid":%d,"tid":%d,"args":{%s:%d}}`,
					jsonString(ev.Name), jsonString(ev.Cat),
					chromeTS(int64(ev.Start)), pid, ev.Lane, jsonString(argName), ev.Arg)
				emit(line.String())
				continue
			default:
				return fmt.Errorf("obs: unknown event kind %d", ev.Kind)
			}
			if ev.ArgName != "" {
				fmt.Fprintf(&line, `,"args":{%s:%d}`, jsonString(ev.ArgName), ev.Arg)
			}
			line.WriteByte('}')
			emit(line.String())
		}
	}
	b.WriteString("\n]}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// ChromeTraceBytes renders the tracers and returns the document.
func ChromeTraceBytes(names []string, tracers ...*Tracer) []byte {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, names, tracers...); err != nil {
		panic(err) // bytes.Buffer cannot fail; kinds are exhaustive
	}
	return b.Bytes()
}

// chromeEvent is the schema-checking view of one trace event.
type chromeEvent struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// ValidateChromeTrace checks that data is a well-formed Chrome trace-event
// document Perfetto will open: a traceEvents array whose entries carry the
// fields their phase requires, with every referenced (pid, tid) row named
// by thread_name metadata and no negative timestamps. It is the checker
// `make obs-smoke` runs over lightpc-obs output.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("chrome trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("chrome trace: missing traceEvents array")
	}
	type row struct{ pid, tid int }
	named := make(map[row]bool)
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Pid != nil && ev.Tid != nil {
			if _, ok := ev.Args["name"].(string); !ok {
				return fmt.Errorf("chrome trace: event %d: thread_name metadata without args.name", i)
			}
			named[row{*ev.Pid, *ev.Tid}] = true
		}
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("chrome trace: event %d: missing name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("chrome trace: event %d (%q): missing pid/tid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			// Metadata rows carry no timestamp.
		case "X":
			if ev.TS == nil || ev.Dur == nil {
				return fmt.Errorf("chrome trace: event %d (%q): complete span without ts/dur", i, ev.Name)
			}
			if *ev.TS < 0 || *ev.Dur < 0 {
				return fmt.Errorf("chrome trace: event %d (%q): negative ts/dur", i, ev.Name)
			}
			if !named[row{*ev.Pid, *ev.Tid}] {
				return fmt.Errorf("chrome trace: event %d (%q): unnamed row pid=%d tid=%d", i, ev.Name, *ev.Pid, *ev.Tid)
			}
		case "i":
			if ev.TS == nil || *ev.TS < 0 {
				return fmt.Errorf("chrome trace: event %d (%q): instant without valid ts", i, ev.Name)
			}
			if ev.S == "" {
				return fmt.Errorf("chrome trace: event %d (%q): instant without scope", i, ev.Name)
			}
			if !named[row{*ev.Pid, *ev.Tid}] {
				return fmt.Errorf("chrome trace: event %d (%q): unnamed row pid=%d tid=%d", i, ev.Name, *ev.Pid, *ev.Tid)
			}
		case "C":
			if ev.TS == nil || *ev.TS < 0 {
				return fmt.Errorf("chrome trace: event %d (%q): counter sample without valid ts", i, ev.Name)
			}
			if len(ev.Args) == 0 {
				return fmt.Errorf("chrome trace: event %d (%q): counter sample without args", i, ev.Name)
			}
			if !named[row{*ev.Pid, *ev.Tid}] {
				return fmt.Errorf("chrome trace: event %d (%q): unnamed row pid=%d tid=%d", i, ev.Name, *ev.Pid, *ev.Tid)
			}
		default:
			return fmt.Errorf("chrome trace: event %d (%q): unsupported phase %q", i, ev.Name, ev.Ph)
		}
	}
	return nil
}
