// Package drive runs instrumented LightPC scenarios for the observability
// tooling: it assembles a platform, attaches a tracer and a metrics
// registry to every layer that accepts one, executes a seeded
// workload + power-failure + recovery sequence, and hands back the
// instruments alongside the SnG reports.
//
// Everything here inherits the repo's determinism contract: a scenario's
// bytes (trace JSON, Prometheus text, phase table) are a pure function of
// its Scenario values, and Sweep merges per-cell instruments in canonical
// cell order so output is identical at any -j level.
package drive

import (
	"fmt"
	"strings"

	lightpc "repro"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sng"
	"repro/internal/workload"
)

// Scenario parameterizes one instrumented power-failure run.
type Scenario struct {
	Kind lightpc.Kind

	Seed        uint64
	Cores       int
	UserProcs   int
	KernelProcs int
	Devices     int

	// Ticks pre-ages the kernel scheduler before the power event.
	Ticks int

	// Workload optionally names a Table II spec to execute before the
	// power failure ("" skips the workload phase).
	Workload string

	// PSU selects the supply ("atx" default, or "server"); Holdup
	// overrides its spec hold-up window when non-zero.
	PSU    string
	Holdup sim.Duration

	// Energy attaches per-device joule meters to the platform: the SnG
	// reports carry per-phase attribution, the registry exports the
	// meters, and EnergyTable renders the breakdown.
	Energy bool
}

// withDefaults fills the zero values with the lightpc-sng defaults.
func (sc Scenario) withDefaults() Scenario {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Cores <= 0 {
		sc.Cores = 8
	}
	if sc.UserProcs <= 0 {
		sc.UserProcs = 72
	}
	if sc.KernelProcs <= 0 {
		sc.KernelProcs = 48
	}
	if sc.Devices <= 0 {
		sc.Devices = 250
	}
	if sc.Ticks <= 0 {
		sc.Ticks = 20
	}
	if sc.PSU == "" {
		sc.PSU = "atx"
	}
	return sc
}

// window resolves the hold-up budget.
func (sc Scenario) window() (power.PSU, sim.Duration, error) {
	var psu power.PSU
	switch sc.PSU {
	case "atx":
		psu = power.ATX()
	case "server":
		psu = power.Server()
	default:
		return psu, 0, fmt.Errorf("drive: unknown PSU %q (want atx or server)", sc.PSU)
	}
	w := sim.Duration(psu.SpecHoldUp)
	if sc.Holdup > 0 {
		w = sc.Holdup
	}
	return psu, w, nil
}

// Result bundles one scenario's reports with the instruments that
// recorded them.
type Result struct {
	Scenario Scenario

	Run   *lightpc.RunResult // nil when no workload ran
	Stop  sng.StopReport
	Go    sng.GoReport
	GoErr error

	Tracer   *obs.Tracer
	Registry *obs.Registry

	// Energy is the platform's meter set (nil unless Scenario.Energy);
	// Supply is the resolved PSU, whose stored joules bound the Stop run.
	Energy *energy.Set
	Supply power.PSU
}

// SnG executes one instrumented scenario: build the platform, wire the
// observability layer through it, optionally run the workload, age the
// scheduler, pull the power against the hold-up window, and recover.
func SnG(sc Scenario) (*Result, error) {
	return run(sc, "")
}

// run is SnG with a metric-name prefix, so Sweep cells merge into one
// Prometheus document without name collisions.
func run(sc Scenario, prefix string) (*Result, error) {
	sc = sc.withDefaults()
	psu, window, err := sc.window()
	if err != nil {
		return nil, err
	}

	cfg := lightpc.DefaultConfig(sc.Kind)
	cfg.Seed = sc.Seed
	cfg.CPU.Cores = sc.Cores
	cfg.Kernel.Cores = sc.Cores
	cfg.Kernel.UserProcs = sc.UserProcs
	cfg.Kernel.KernelProcs = sc.KernelProcs
	cfg.Kernel.Devices = sc.Devices
	cfg.Energy = sc.Energy
	p := lightpc.New(cfg)

	res := &Result{
		Scenario: sc,
		Tracer:   obs.NewTracer(),
		Registry: obs.NewRegistry(),
		Energy:   p.Energy(),
		Supply:   psu,
	}
	p.SnG().Obs = res.Tracer
	energy.RegisterSet(res.Registry, prefix+"energy_", res.Energy)
	if ps := p.PSM(); ps != nil {
		ps.SetTracer(res.Tracer)
		ps.RegisterMetrics(res.Registry, prefix+"psm_")
	}
	if d := p.DRAM(); d != nil {
		d.RegisterMetrics(res.Registry, prefix+"dram_")
	}
	p.Kernel().RegisterMetrics(res.Registry, prefix+"kernel_")

	if sc.Workload != "" {
		spec, ok := workload.ByName(sc.Workload)
		if !ok {
			return nil, fmt.Errorf("drive: unknown workload %q", sc.Workload)
		}
		rr := p.Run(spec)
		res.Run = &rr
		obs.RegisterTraceStats(res.Registry, prefix+"cpu_", &rr.Stats)
	}

	p.Kernel().Tick(sc.Ticks)

	// PowerFail with the (possibly overridden) window, then Go at the
	// same origin the CLI uses.
	res.Stop = p.SnG().Stop(0, sim.Time(window))
	p.Kernel().PowerLoss()
	res.Go, res.GoErr = p.Recover(0)
	return res, nil
}

// PhaseTable renders the run's SnG decomposition as an aligned table:
// every Stop and Go phase with its start, duration, and share of the
// hold-up budget.
func (res *Result) PhaseTable() string {
	sc := res.Scenario
	t := report.New(
		fmt.Sprintf("SnG phase timeline — %s, seed %d", sc.Kind, sc.Seed),
		"phase", "start", "duration", "share of budget")
	budget := res.Stop.Budget
	share := func(d sim.Duration) string {
		if budget <= 0 {
			return "-"
		}
		return report.Pct(float64(d) / float64(budget))
	}
	for _, ph := range res.Stop.Phases {
		t.Add("stop/"+ph.Name, report.Dur(ph.Start.Sub(0)), report.Dur(ph.Dur), share(ph.Dur))
	}
	t.Add("stop/total", report.Dur(0), report.Dur(res.Stop.Total), share(res.Stop.Total))
	for _, ph := range res.Go.Phases {
		t.Add("go/"+ph.Name, report.Dur(ph.Start.Sub(0)), report.Dur(ph.Dur), "-")
	}
	t.Add("go/total", report.Dur(0), report.Dur(res.Go.Total), "-")

	t.Note("hold-up budget: %v (%s)", budget, sc.PSU)
	if res.Stop.Completed {
		t.Note("EP-cut committed %v before the rails dropped", budget-res.Stop.Total)
	} else {
		t.Note("budget exceeded in phase %q — no EP-cut, recovery cold boots", res.Stop.OverrunPhase)
	}
	if res.GoErr != nil {
		t.Note("Go: %v", res.GoErr)
	}
	return t.String()
}

// EnergyTable renders the run's per-phase per-device joule attribution in
// milli-joules: one row per SnG phase, one column per metered device with
// the per-core meters folded into a single "cores" column, plus a hold-up
// feasibility note checking the Stop path's measured draw against the
// PSU's stored energy.
func (res *Result) EnergyTable() string {
	if res.Energy == nil {
		return "energy accounting disabled (Scenario.Energy=false)\n"
	}
	meters := res.Energy.Meters()
	// Column layout: non-core meters keep their own column, all core
	// meters share one, and the row closes with the phase total.
	cols := []string{"phase"}
	colOf := make([]int, len(meters))
	coresCol := -1
	for i, m := range meters {
		if strings.HasPrefix(m.Name(), "core") {
			if coresCol < 0 {
				coresCol = len(cols)
				cols = append(cols, "cores mJ")
			}
			colOf[i] = coresCol
			continue
		}
		colOf[i] = len(cols)
		cols = append(cols, m.Name()+" mJ")
	}
	cols = append(cols, "total mJ")
	sc := res.Scenario
	t := report.New(
		fmt.Sprintf("SnG energy attribution — %s, seed %d", sc.Kind, sc.Seed), cols...)

	var stopJ float64
	row := func(prefix string, pe sng.PhaseEnergy) {
		vals := make([]float64, len(cols))
		for i, dj := range pe.ByDevice {
			vals[colOf[i]] += dj.J
		}
		cells := make([]string, 0, len(cols))
		cells = append(cells, prefix+pe.Phase)
		for _, v := range vals[1 : len(cols)-1] {
			cells = append(cells, report.F(v*1e3, 4))
		}
		cells = append(cells, report.F(pe.J*1e3, 4))
		t.Add(cells...)
	}
	for _, pe := range res.Stop.Energy {
		row("stop/", pe)
		stopJ += pe.J
	}
	for _, pe := range res.Go.Energy {
		row("go/", pe)
	}

	if res.Supply.StoredJ > 0 {
		verdict := "feasible"
		if stopJ > res.Supply.StoredJ {
			verdict = "INFEASIBLE"
		}
		t.Note("stop path drew %s mJ of the %s PSU's %s mJ stored (%s) — hold-up %s",
			report.F(stopJ*1e3, 4), res.Supply.Name,
			report.F(res.Supply.StoredJ*1e3, 1),
			report.Pct(stopJ/res.Supply.StoredJ), verdict)
	}
	t.Note("cumulative device energy (workload + stop + go): %s mJ",
		report.F(res.Energy.TotalJ()*1e3, 4))
	return t.String()
}

// ChromeTrace renders the run's tracer as one Chrome trace-event document.
func (res *Result) ChromeTrace() []byte {
	return obs.ChromeTraceBytes([]string{res.label()}, res.Tracer)
}

// label names the run for trace process rows and sweep cells.
func (res *Result) label() string {
	return fmt.Sprintf("%s/seed%d", res.Scenario.Kind, res.Scenario.Seed)
}

// SweepResult is a set of per-seed results merged in canonical order.
type SweepResult struct {
	Cells []*Result
}

// Sweep runs the scenario once per seed on a deterministic worker pool
// (jobs ≤ 0 means GOMAXPROCS, 1 forces serial) and returns the cells in
// seed order — the same bytes at any parallelism.
func Sweep(base Scenario, seeds []uint64, jobs int) (*SweepResult, error) {
	cells := make([]runner.Cell[*Result], len(seeds))
	errs := make([]error, len(seeds))
	for i, seed := range seeds {
		i, seed := i, seed
		sc := base
		sc.Seed = seed
		cells[i] = runner.Cell[*Result]{
			Label: fmt.Sprintf("sng/seed%d", seed),
			Run: func() *Result {
				r, err := run(sc, fmt.Sprintf("cell%d_", i))
				errs[i] = err
				return r
			},
		}
	}
	out := runner.Run(runner.Pool{Workers: jobs}, cells)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sw := &SweepResult{Cells: out}
	for i, c := range sw.Cells {
		c.Tracer.SetPid(i)
	}
	return sw, nil
}

// ChromeTrace merges every cell's tracer into one document, one process
// per cell, in cell order.
func (s *SweepResult) ChromeTrace() []byte {
	names := make([]string, len(s.Cells))
	tracers := make([]*obs.Tracer, len(s.Cells))
	for i, c := range s.Cells {
		names[i] = c.label()
		tracers[i] = c.Tracer
	}
	return obs.ChromeTraceBytes(names, tracers...)
}

// Prometheus concatenates the per-cell registries in cell order. Cell
// metric names carry a cell<i>_ prefix, so families never collide.
func (s *SweepResult) Prometheus() []byte {
	var b strings.Builder
	for _, c := range s.Cells {
		b.Write(c.Registry.PrometheusBytes())
	}
	return []byte(b.String())
}

// PhaseTables renders every cell's phase table in cell order.
func (s *SweepResult) PhaseTables() string {
	var b strings.Builder
	for i, c := range s.Cells {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(c.PhaseTable())
	}
	return b.String()
}

// EnergyTables renders every cell's energy table in cell order.
func (s *SweepResult) EnergyTables() string {
	var b strings.Builder
	for i, c := range s.Cells {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(c.EnergyTable())
	}
	return b.String()
}
