package drive

import (
	"bytes"
	"strings"
	"testing"

	lightpc "repro"
	"repro/internal/obs"
	"repro/internal/sim"
)

func mustSnG(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := SnG(sc)
	if err != nil {
		t.Fatalf("SnG: %v", err)
	}
	return res
}

// The headline contract: one seeded scenario produces identical trace,
// metrics, and table bytes on every run.
func TestSnGDeterministicBytes(t *testing.T) {
	sc := Scenario{Kind: lightpc.LightPCFull, Seed: 7}
	a, b := mustSnG(t, sc), mustSnG(t, sc)

	if ta, tb := a.ChromeTrace(), b.ChromeTrace(); !bytes.Equal(ta, tb) {
		t.Fatal("trace bytes differ between identical runs")
	}
	if pa, pb := a.Registry.PrometheusBytes(), b.Registry.PrometheusBytes(); !bytes.Equal(pa, pb) {
		t.Fatal("prometheus bytes differ between identical runs")
	}
	if ja, jb := a.Registry.JSONBytes(), b.Registry.JSONBytes(); !bytes.Equal(ja, jb) {
		t.Fatal("JSON snapshot bytes differ between identical runs")
	}
	if a.PhaseTable() != b.PhaseTable() {
		t.Fatal("phase tables differ between identical runs")
	}

	if err := obs.ValidateChromeTrace(a.ChromeTrace()); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if err := obs.ValidatePrometheus(a.Registry.PrometheusBytes()); err != nil {
		t.Fatalf("prometheus invalid: %v", err)
	}
}

// The phase spans must reconcile exactly with the StopReport: durations
// sum to Total, and a completed default run sits inside the 16 ms ATX
// hold-up window.
func TestPhasesReconcileWithReport(t *testing.T) {
	res := mustSnG(t, Scenario{Kind: lightpc.LightPCFull, Seed: 1})
	if !res.Stop.Completed {
		t.Fatalf("default scenario missed the hold-up window: %+v", res.Stop)
	}
	if res.GoErr != nil {
		t.Fatalf("Go failed: %v", res.GoErr)
	}

	var sum sim.Duration
	for _, ph := range res.Stop.Phases {
		sum += ph.Dur
	}
	if sum != res.Stop.Total {
		t.Fatalf("stop phases sum to %v, report total %v", sum, res.Stop.Total)
	}
	if res.Stop.Budget != 16*sim.Millisecond {
		t.Fatalf("ATX budget = %v, want 16ms", res.Stop.Budget)
	}
	if res.Stop.Total > res.Stop.Budget {
		t.Fatalf("completed stop (%v) exceeds budget (%v)", res.Stop.Total, res.Stop.Budget)
	}

	sum = 0
	for _, ph := range res.Go.Phases {
		sum += ph.Dur
	}
	if sum != res.Go.Total {
		t.Fatalf("go phases sum to %v, report total %v", sum, res.Go.Total)
	}

	table := res.PhaseTable()
	for _, want := range []string{"stop/process-stop", "stop/device-stop", "stop/offline", "go/boot-check", "hold-up budget: 16.000ms"} {
		if !strings.Contains(table, want) {
			t.Fatalf("phase table missing %q:\n%s", want, table)
		}
	}
}

// A starved hold-up window must abort without a commit, name the owing
// phase, and leave the terminal budget-exceeded instant in the trace.
func TestBudgetExceededNamesOwingPhase(t *testing.T) {
	res := mustSnG(t, Scenario{Kind: lightpc.LightPCFull, Seed: 1, Holdup: 100 * sim.Microsecond})
	if res.Stop.Completed {
		t.Fatal("stop completed inside a 100us window")
	}
	if res.Stop.OverrunPhase == "" {
		t.Fatal("overrun run did not name the owing phase")
	}
	trace := string(res.ChromeTrace())
	if !strings.Contains(trace, "budget-exceeded: "+res.Stop.OverrunPhase) {
		t.Fatalf("trace missing budget-exceeded instant for phase %q", res.Stop.OverrunPhase)
	}
	if res.GoErr == nil {
		t.Fatal("recovery succeeded without a committed EP-cut")
	}
	if err := obs.ValidateChromeTrace(res.ChromeTrace()); err != nil {
		t.Fatalf("overrun trace invalid: %v", err)
	}
}

// The sweep contract: same seeds, any -j level, byte-identical artifacts.
func TestSweepParallelismInvariant(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	serial, err := Sweep(Scenario{Kind: lightpc.LightPCFull}, seeds, 1)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	parallel, err := Sweep(Scenario{Kind: lightpc.LightPCFull}, seeds, 4)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}

	st, pt := serial.ChromeTrace(), parallel.ChromeTrace()
	if !bytes.Equal(st, pt) {
		t.Fatal("sweep trace bytes differ between -j 1 and -j 4")
	}
	sp, pp := serial.Prometheus(), parallel.Prometheus()
	if !bytes.Equal(sp, pp) {
		t.Fatal("sweep prometheus bytes differ between -j 1 and -j 4")
	}
	if serial.PhaseTables() != parallel.PhaseTables() {
		t.Fatal("sweep phase tables differ between -j 1 and -j 4")
	}
	if err := obs.ValidateChromeTrace(st); err != nil {
		t.Fatalf("sweep trace invalid: %v", err)
	}
	if err := obs.ValidatePrometheus(sp); err != nil {
		t.Fatalf("sweep prometheus invalid: %v", err)
	}
	// One process row per cell.
	for _, want := range []string{`"name":"LightPC/seed1"`, `"name":"LightPC/seed4"`, `"pid":3`} {
		if !strings.Contains(string(st), want) {
			t.Fatalf("sweep trace missing %s", want)
		}
	}
}

// The energy sweep contract: with meters on, the per-phase joule tables
// and the exported energy gauges are byte-identical at -j 1 and -j N.
func TestSweepEnergyParallelismInvariant(t *testing.T) {
	sc := Scenario{Kind: lightpc.LightPCFull, Workload: "Redis", Energy: true}
	seeds := []uint64{1, 2, 3, 4}
	serial, err := Sweep(sc, seeds, 1)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	parallel, err := Sweep(sc, seeds, 4)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	st, pt := serial.EnergyTables(), parallel.EnergyTables()
	if st != pt {
		t.Fatal("sweep energy tables differ between -j 1 and -j 4")
	}
	if sp, pp := serial.Prometheus(), parallel.Prometheus(); !bytes.Equal(sp, pp) {
		t.Fatal("sweep prometheus bytes (incl. energy gauges) differ between -j 1 and -j 4")
	}
	for _, want := range []string{"stop/process-stop", "go/boot-check", "hold-up feasible", "_energy_"} {
		probe := st
		if want == "_energy_" {
			probe = string(serial.Prometheus())
		}
		if !strings.Contains(probe, want) {
			t.Fatalf("energy sweep output missing %q", want)
		}
	}
}

// With Scenario.Energy unset the table degrades to an explicit notice and
// no energy series leak into the exposition.
func TestEnergyDisabledByDefault(t *testing.T) {
	res := mustSnG(t, Scenario{Kind: lightpc.LightPCFull, Seed: 1})
	if res.Energy != nil {
		t.Fatal("meters built with Scenario.Energy=false")
	}
	if !strings.Contains(res.EnergyTable(), "disabled") {
		t.Fatalf("EnergyTable() = %q, want disabled notice", res.EnergyTable())
	}
	if strings.Contains(string(res.Registry.PrometheusBytes()), "_energy_") {
		t.Fatal("energy series exported with meters off")
	}
}

// A workload-bearing scenario exports the CPU reference-stream counters.
func TestWorkloadMetricsExported(t *testing.T) {
	res := mustSnG(t, Scenario{Kind: lightpc.LightPCFull, Seed: 1, Workload: "Redis"})
	if res.Run == nil {
		t.Fatal("workload did not run")
	}
	prom := string(res.Registry.PrometheusBytes())
	for _, want := range []string{"cpu_reads_total", "psm_reads_total", "kernel_procs"} {
		if !strings.Contains(prom, want) {
			t.Fatalf("metrics missing %s:\n%s", want, prom)
		}
	}
}
