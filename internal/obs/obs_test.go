package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// The nil tracer and nil registry are the disabled instruments: every
// method must no-op without panicking and without allocating.
func TestNilInstrumentsAreSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	lane := tr.Lane("master")
	id := tr.Begin(0, lane, "cat", "span")
	tr.End(5, id)
	tr.Span(0, 10, lane, "cat", "span")
	tr.SpanArg(0, 10, lane, "cat", "span", "n", 1)
	tr.Instant(3, lane, "cat", "mark")
	tr.InstantArg(3, lane, "cat", "mark", "n", 2)
	tr.Reset()
	tr.SetPid(1)
	tr.SetLimit(4)
	if tr.Len() != 0 || tr.Events() != nil || tr.Lost() != 0 || tr.LaneName(lane) != "" {
		t.Fatal("nil tracer leaked state")
	}

	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("c", "")
	c.Inc()
	c.Add(3)
	g := r.Gauge("g", "")
	g.Set(1)
	g.Add(2)
	h := r.Histogram("h", "", nil)
	h.Observe(sim.Microsecond)
	r.CounterFunc("cf", "", func() uint64 { return 1 })
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	RegisterTraceStats(r, "x_", &trace.Stats{})
	RegisterEngine(r, "x_", sim.NewEngine())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || r.Len() != 0 || r.Lookup("c") != nil {
		t.Fatal("nil registry leaked state")
	}
}

func TestDisabledInstrumentsAllocFree(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(0, 0, "cat", "span")
		tr.End(1, id)
		tr.Span(0, 1, 0, "cat", "span")
		tr.Instant(0, 0, "cat", "mark")
		tr.InstantArg(0, 0, "cat", "mark", "n", 1)
		c.Inc()
		g.Set(2)
		h.Observe(sim.Nanosecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.2f allocs/op, want 0", allocs)
	}
}

func buildTracer() *Tracer {
	tr := NewTracer()
	master := tr.Lane("master")
	core1 := tr.Lane("core1")
	id := tr.Begin(0, master, "sng", "drive-to-idle")
	tr.Instant(sim.Time(10*sim.Microsecond), core1, "sng", "ipi")
	tr.End(sim.Time(40*sim.Microsecond), id)
	tr.SpanArg(sim.Time(40*sim.Microsecond), sim.Time(90*sim.Microsecond), core1, "sng", "flush", "lines", 128)
	tr.InstantArg(sim.Time(90*sim.Microsecond), master, "sng", "commit", "ok", 1)
	return tr
}

func TestChromeExportDeterministicAndValid(t *testing.T) {
	a := ChromeTraceBytes(nil, buildTracer())
	b := ChromeTraceBytes(nil, buildTracer())
	if !bytes.Equal(a, b) {
		t.Fatal("same events produced different trace bytes")
	}
	if err := ValidateChromeTrace(a); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	for _, want := range []string{
		`"name":"drive-to-idle"`, `"name":"core1"`, `"ph":"X"`, `"ph":"i"`,
		`"args":{"lines":128}`, `"ts":40.000000`, `"dur":50.000000`,
	} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("trace missing %s:\n%s", want, a)
		}
	}
}

func TestChromeExportMergesTracersByPid(t *testing.T) {
	t1, t2 := buildTracer(), buildTracer()
	t2.SetPid(1)
	data := ChromeTraceBytes([]string{"cell-a", "cell-b"}, t1, t2)
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("merged trace fails validation: %v", err)
	}
	for _, want := range []string{`"name":"cell-a"`, `"name":"cell-b"`, `"pid":1`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("merged trace missing %s", want)
		}
	}
}

func TestChromeValidateRejectsMalformed(t *testing.T) {
	cases := []struct{ label, doc string }{
		{"not json", `{"traceEvents":`},
		{"no traceEvents", `{}`},
		{"missing name", `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`},
		{"missing dur", `{"traceEvents":[{"ph":"X","name":"x","ts":0,"pid":0,"tid":0}]}`},
		{"unnamed row", `{"traceEvents":[{"ph":"X","name":"x","ts":0,"dur":1,"pid":0,"tid":9}]}`},
		{"negative ts", `{"traceEvents":[{"ph":"M","name":"thread_name","pid":0,"tid":0,"args":{"name":"m"}},{"ph":"X","name":"x","ts":-1,"dur":1,"pid":0,"tid":0}]}`},
		{"unknown phase", `{"traceEvents":[{"ph":"Z","name":"x","pid":0,"tid":0}]}`},
		{"scopeless inst", `{"traceEvents":[{"ph":"M","name":"thread_name","pid":0,"tid":0,"args":{"name":"m"}},{"ph":"i","name":"x","ts":0,"pid":0,"tid":0}]}`},
		{"nameless thread", `{"traceEvents":[{"ph":"M","name":"thread_name","pid":0,"tid":0,"args":{}}]}`},
	}
	for _, c := range cases {
		if err := ValidateChromeTrace([]byte(c.doc)); err == nil {
			t.Errorf("%s: validator accepted malformed document", c.label)
		}
	}
}

func TestTracerOpenSpanClampsAndLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	id := tr.Begin(100, 0, "c", "open") // never ended
	_ = id
	tr.Span(0, 10, 0, "c", "full")
	tr.Instant(5, 0, "c", "dropped")
	if tr.Len() != 2 || tr.Lost() != 1 {
		t.Fatalf("limit: len=%d lost=%d, want 2/1", tr.Len(), tr.Lost())
	}
	data := ChromeTraceBytes(nil, tr)
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("open span export invalid: %v", err)
	}
	if !strings.Contains(string(data), `"name":"open","cat":"c","ts":0.000100,"dur":0.000000`) {
		t.Fatalf("open span not clamped to zero duration:\n%s", data)
	}
	// End after Begin on a dropped-span handle (0) must stay a no-op.
	tr.End(999, 0)
	tr.Reset()
	if tr.Len() != 0 || tr.Lost() != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
	if tr.LaneName(0) != "main" {
		t.Fatal("Reset dropped the lane table")
	}
}

func TestRegistryExportsSortedAndValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_last", "the last metric").Add(7)
	g := r.Gauge("a_first", "the first metric")
	g.Set(2.5)
	h := r.Histogram("m_hist", "a histogram", []sim.Duration{sim.Microsecond, sim.Millisecond})
	h.Observe(500 * sim.Nanosecond)
	h.Observe(2 * sim.Microsecond)
	h.Observe(20 * sim.Millisecond)
	r.CounterFunc("f_func", "sampled", func() uint64 { return 42 })

	prom := r.PrometheusBytes()
	if err := ValidatePrometheus(prom); err != nil {
		t.Fatalf("prometheus output invalid: %v\n%s", err, prom)
	}
	text := string(prom)
	for _, want := range []string{
		"# TYPE a_first gauge", "a_first 2.5",
		"# TYPE f_func counter", "f_func 42",
		"# TYPE z_last counter", "z_last 7",
		"# TYPE m_hist histogram",
		`m_hist_bucket{le="1e-06"} 1`,
		`m_hist_bucket{le="0.001"} 2`,
		`m_hist_bucket{le="+Inf"} 3`,
		"m_hist_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// Name-sorted: a_first before f_func before m_hist before z_last.
	if !(strings.Index(text, "a_first") < strings.Index(text, "f_func") &&
		strings.Index(text, "f_func") < strings.Index(text, "m_hist") &&
		strings.Index(text, "m_hist") < strings.Index(text, "z_last")) {
		t.Fatalf("prometheus output not name-sorted:\n%s", text)
	}

	if !bytes.Equal(prom, r.PrometheusBytes()) {
		t.Fatal("prometheus export not deterministic")
	}
	j := r.JSONBytes()
	if !bytes.Equal(j, r.JSONBytes()) {
		t.Fatal("JSON export not deterministic")
	}
	for _, want := range []string{`"name":"m_hist"`, `"sum_ps":`, `"le_ps":1000000`, `"value":42`} {
		if !strings.Contains(string(j), want) {
			t.Fatalf("JSON snapshot missing %s:\n%s", want, j)
		}
	}
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	cases := []struct{ label, doc string }{
		{"no type", "orphan 3\n"},
		{"bad value", "# TYPE m counter\nm notanumber\n"},
		{"bad type", "# TYPE m zebra\nm 3\n"},
		{"one field", "# TYPE m counter\nm\n"},
	}
	for _, c := range cases {
		if err := ValidatePrometheus([]byte(c.doc)); err == nil {
			t.Errorf("%s: validator accepted malformed text", c.label)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "")
	r.Counter("dup", "")
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []sim.Duration{10, 20, 30})
	for _, d := range []sim.Duration{5, 10, 15, 25, 35, 40} {
		h.Observe(d)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("cumulative buckets = %v, want [2 3 4]", cum)
	}
	if h.Count() != 6 || h.Sum() != 5+10+15+25+35+40 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestRegisterEngineSamplesLive(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry()
	RegisterEngine(r, "sim_", e)
	e.Schedule(0, "imm", func(sim.Time) {})
	e.Schedule(sim.Microsecond, "later", func(sim.Time) {})
	e.Run()
	if got := r.Lookup("sim_engine_dispatched_total").Value(); got != 2 {
		t.Fatalf("dispatched metric = %v, want 2", got)
	}
	if got := r.Lookup("sim_engine_immediate_total").Value(); got != 1 {
		t.Fatalf("immediate metric = %v, want 1", got)
	}
	if got := r.Lookup("sim_engine_heap_depth_max").Value(); got != 1 {
		t.Fatalf("heap depth max = %v, want 1", got)
	}
}

func TestRegisterParallelEngineSamplesLive(t *testing.T) {
	const L = 10 * sim.Nanosecond
	p := sim.NewParallel(sim.ParallelConfig{Islands: 2, Lookahead: L, Workers: 1})
	r := NewRegistry()
	RegisterParallelEngine(r, "pdes_", p)
	p.Island(0).Engine().Schedule(0, "start", func(now sim.Time) {
		p.Island(0).Send(1, L, "ping", func(sim.Time) {})
	})
	p.Run()
	if got := r.Lookup("pdes_islands").Value(); got != 2 {
		t.Fatalf("islands metric = %v, want 2", got)
	}
	if got := r.Lookup("pdes_messages_total").Value(); got != 1 {
		t.Fatalf("messages metric = %v, want 1", got)
	}
	if got := r.Lookup("pdes_lookahead_ps").Value(); got != float64(L) {
		t.Fatalf("lookahead metric = %v, want %v", got, float64(L))
	}
	if got := r.Lookup("pdes_island0_sent_total").Value(); got != 1 {
		t.Fatalf("island0 sent metric = %v, want 1", got)
	}
	if got := r.Lookup("pdes_island1_delivered_total").Value(); got != 1 {
		t.Fatalf("island1 delivered metric = %v, want 1", got)
	}
	if got := r.Lookup("pdes_island1_engine_dispatched_total").Value(); got != 1 {
		t.Fatalf("island1 dispatched metric = %v, want 1", got)
	}
	if r.Lookup("pdes_epochs_total").Value() == 0 {
		t.Fatal("epochs metric did not advance")
	}
}
