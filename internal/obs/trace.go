// Package obs is the deterministic observability layer: a sim-time span/
// event tracer and a typed metrics registry, with exporters for the Chrome
// trace-event JSON format (Perfetto timelines) and the Prometheus text
// format.
//
// Two properties govern every type here:
//
//   - Sim time only. Events and histogram samples are keyed to sim.Time /
//     sim.Duration — never the wall clock — so an enabled tracer is exactly
//     as reproducible as the simulation itself: same seed, same bytes. The
//     obsdeterminism analyzer (cmd/lightpc-lint) enforces this statically,
//     along with a ban on map-order iteration in the exporters.
//
//   - Zero cost when disabled. The nil *Tracer and nil *Registry are the
//     disabled instruments: every method is a nil-safe no-op, so
//     instrumented hot paths (engine dispatch, device access) stay
//     0 allocs/op with observability off (asserted by bench_test.go).
//     Instrumentation therefore threads plain nil-able pointers, not
//     interfaces — an interface call would defeat both the nil fast path
//     and inlining.
//
// Buffering follows the same arena discipline as the sim.Engine event pool:
// events land in a flat slice that Reset reuses, and an optional cap turns
// the buffer into a bounded arena that drops (and counts) overflow rather
// than growing without bound.
package obs

import "repro/internal/sim"

// Lane identifies one timeline row (a Perfetto "thread"): a core, a device,
// the SnG master. Lane 0 is the default lane of an unconfigured tracer.
type Lane int32

// EventKind distinguishes the trace event shapes.
type EventKind uint8

// Event kinds.
const (
	// KindSpan is a complete duration event (Chrome phase "X").
	KindSpan EventKind = iota
	// KindInstant is a point event (Chrome phase "i").
	KindInstant
	// KindCounterSample is a counter-series sample (Chrome phase "C"):
	// Name is the counter series, ArgName/Arg carry the sampled value.
	KindCounterSample
)

// Event is one recorded trace entry. Name and Cat are expected to be
// static strings (or at least strings whose construction the caller
// amortizes); the tracer stores them as-is.
type Event struct {
	Start sim.Time
	// Dur is the span length; negative marks a still-open span (Begin
	// without End), which the exporter clamps to zero.
	Dur  sim.Duration
	Lane Lane
	Kind EventKind
	Cat  string
	Name string

	// ArgName/Arg carry one optional integer argument ("lines", "bytes").
	ArgName string
	Arg     int64
}

// SpanID is a handle to an open span. The zero SpanID is invalid; End(0)
// is a no-op, so Begin/End pairs stay safe when the tracer is disabled.
type SpanID int

// Tracer records sim-time events into a pooled in-memory buffer. The nil
// tracer is the disabled tracer: every method no-ops. Tracers are not safe
// for concurrent use — like the sim.Engine they serve, one tracer belongs
// to one single-threaded simulation (parallel experiment cells each own a
// tracer and merge canonically; see WriteChromeTrace).
type Tracer struct {
	pid    int32
	events []Event
	lanes  []string
	byName map[string]Lane
	limit  int
	lost   uint64
}

// NewTracer returns an enabled tracer with one default lane ("main").
func NewTracer() *Tracer {
	return &Tracer{
		lanes:  []string{"main"},
		byName: map[string]Lane{"main": 0},
	}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SetPid assigns the Chrome "process" id, letting several tracers merge
// into one timeline (one process per experiment cell).
func (t *Tracer) SetPid(pid int) {
	if t == nil {
		return
	}
	t.pid = int32(pid)
}

// Pid reports the Chrome process id.
func (t *Tracer) Pid() int {
	if t == nil {
		return 0
	}
	return int(t.pid)
}

// SetLimit bounds the event buffer: once len(events) reaches n, further
// events are dropped and counted (Lost). Zero removes the bound.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.limit = n
}

// Lost reports how many events the limit dropped.
func (t *Tracer) Lost() uint64 {
	if t == nil {
		return 0
	}
	return t.lost
}

// Lane returns the lane with the given name, registering it on first use.
// On a nil tracer it returns the zero lane.
func (t *Tracer) Lane(name string) Lane {
	if t == nil {
		return 0
	}
	if l, ok := t.byName[name]; ok {
		return l
	}
	l := Lane(len(t.lanes))
	t.lanes = append(t.lanes, name)
	t.byName[name] = l
	return l
}

// LaneName reports the registered name of l ("" when unknown).
func (t *Tracer) LaneName(l Lane) string {
	if t == nil || int(l) < 0 || int(l) >= len(t.lanes) {
		return ""
	}
	return t.lanes[l]
}

// Lanes reports the registered lane names in lane order.
func (t *Tracer) Lanes() []string {
	if t == nil {
		return nil
	}
	return t.lanes
}

// push appends one event, honoring the limit. It reports the slot index,
// or -1 when the event was dropped.
//
//lightpc:zeroalloc
func (t *Tracer) push(ev Event) int {
	if t.limit > 0 && len(t.events) >= t.limit {
		t.lost++
		return -1
	}
	//lint:allow zeroalloc buffer growth is amortized; Reset reuses the backing array
	t.events = append(t.events, ev)
	return len(t.events) - 1
}

// Span records a complete [start, end] span on lane.
//
//lightpc:zeroalloc
func (t *Tracer) Span(start, end sim.Time, lane Lane, cat, name string) {
	if t == nil {
		return
	}
	t.push(Event{Start: start, Dur: end.Sub(start), Lane: lane, Kind: KindSpan, Cat: cat, Name: name})
}

// SpanArg records a complete span carrying one integer argument.
//
//lightpc:zeroalloc
func (t *Tracer) SpanArg(start, end sim.Time, lane Lane, cat, name, argName string, arg int64) {
	if t == nil {
		return
	}
	t.push(Event{Start: start, Dur: end.Sub(start), Lane: lane, Kind: KindSpan, Cat: cat, Name: name, ArgName: argName, Arg: arg})
}

// Begin opens a span at 'at'; the returned handle closes it via End. On a
// nil tracer (or a full buffer) it returns 0, which End ignores.
//
//lightpc:zeroalloc
func (t *Tracer) Begin(at sim.Time, lane Lane, cat, name string) SpanID {
	if t == nil {
		return 0
	}
	idx := t.push(Event{Start: at, Dur: -1, Lane: lane, Kind: KindSpan, Cat: cat, Name: name})
	return SpanID(idx + 1)
}

// End closes the span opened by Begin at 'at'. Ending the zero SpanID is a
// no-op; an End earlier than its Begin clamps to a zero-length span.
//
//lightpc:zeroalloc
func (t *Tracer) End(at sim.Time, id SpanID) {
	if t == nil || id <= 0 || int(id) > len(t.events) {
		return
	}
	ev := &t.events[id-1]
	if d := at.Sub(ev.Start); d > 0 {
		ev.Dur = d
	} else {
		ev.Dur = 0
	}
}

// EndArg closes the span and attaches one integer argument.
//
//lightpc:zeroalloc
func (t *Tracer) EndArg(at sim.Time, id SpanID, argName string, arg int64) {
	if t == nil || id <= 0 || int(id) > len(t.events) {
		return
	}
	t.End(at, id)
	ev := &t.events[id-1]
	ev.ArgName, ev.Arg = argName, arg
}

// Instant records a point event.
//
//lightpc:zeroalloc
func (t *Tracer) Instant(at sim.Time, lane Lane, cat, name string) {
	if t == nil {
		return
	}
	t.push(Event{Start: at, Lane: lane, Kind: KindInstant, Cat: cat, Name: name})
}

// InstantArg records a point event carrying one integer argument.
//
//lightpc:zeroalloc
func (t *Tracer) InstantArg(at sim.Time, lane Lane, cat, name, argName string, arg int64) {
	if t == nil {
		return
	}
	t.push(Event{Start: at, Lane: lane, Kind: KindInstant, Cat: cat, Name: name, ArgName: argName, Arg: arg})
}

// Counter records one sample of a counter series — Perfetto renders each
// named series on lane as its own stacked counter track ("C" rows). Arg is
// the cumulative value at 'at'; argName names the unit/series key.
//
//lightpc:zeroalloc
func (t *Tracer) Counter(at sim.Time, lane Lane, cat, name, argName string, arg int64) {
	if t == nil {
		return
	}
	t.push(Event{Start: at, Lane: lane, Kind: KindCounterSample, Cat: cat, Name: name, ArgName: argName, Arg: arg})
}

// Len reports the number of buffered events.
//
//lightpc:zeroalloc
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events exposes the buffered events in record order (the deterministic
// export order). The slice is owned by the tracer; callers must not hold it
// across Reset.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Reset discards the events but keeps the buffer capacity and the lane
// table — the pooled-arena reuse discipline.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = t.events[:0]
	t.lost = 0
}
