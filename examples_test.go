package lightpc_test

// examples_test.go builds every example program and runs it end-to-end:
// the examples double as living documentation, so a refactor that breaks
// one fails the suite rather than the next reader.

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("building examples is slow; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("examples directory: %v", err)
	}
	bindir := t.TempDir()
	exe := ""
	if runtime.GOOS == "windows" {
		exe = ".exe"
	}

	// One `go build` for all seven keeps the package graph compiled once.
	build := exec.Command("go", "build", "-o", bindir+string(os.PathSeparator), "./examples/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}

	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name+exe)
			cmd := exec.Command(bin)
			done := make(chan error, 1)
			var out []byte
			start := time.Now()
			go func() {
				var runErr error
				out, runErr = cmd.CombinedOutput()
				done <- runErr
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("%s exited with %v after %v\n%s", name, err, time.Since(start), out)
				}
				if len(out) == 0 {
					t.Fatalf("%s printed nothing", name)
				}
			case <-time.After(2 * time.Minute):
				if cmd.Process != nil {
					cmd.Process.Kill()
				}
				t.Fatalf("%s still running after 2m", name)
			}
		})
		ran++
	}
	if ran < 7 {
		t.Fatalf("found %d example programs, expected at least 7", ran)
	}
}
