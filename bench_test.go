package lightpc_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus one per design-choice ablation. Each bench
// executes its experiment end-to-end and reports the headline numbers the
// paper plots as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every row/series (EXPERIMENTS.md records paper-vs-measured).
// The benches use the trimmed quick sweeps; `cmd/lightpc-bench` runs the
// full-fidelity versions.

import (
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// opts runs the benches through the parallel runner at GOMAXPROCS — the
// same path cmd/lightpc-bench takes; output is identical at any -j.
func opts() experiments.Options {
	o := experiments.QuickOptions()
	o.Jobs = runtime.GOMAXPROCS(0)
	return o
}

// BenchmarkAllQuickSerial and BenchmarkAllQuickParallel run the entire
// quick experiment suite at -j 1 and -j GOMAXPROCS; the ratio of their
// ns/op is the runner's wall-clock speedup (recorded by `make bench-json`
// into BENCH_SEED.json).
func BenchmarkAllQuickSerial(b *testing.B) {
	o := experiments.QuickOptions()
	o.Jobs = 1
	for i := 0; i < b.N; i++ {
		if experiments.Render(experiments.RunAll(o)) == "" {
			b.Fatal("empty output")
		}
	}
}

// requireRealParallelism skips a parallelism benchmark loudly when the
// process has a single CPU: at GOMAXPROCS=1 the "parallel" run is the
// serial run with extra bookkeeping, and recording its ns/op as a speedup
// measurement is worse than recording nothing (BENCH_SEED.json once
// carried a gomaxprocs:1 "speedup" of 1.05x this way).
func requireRealParallelism(b *testing.B) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		b.Skipf("GOMAXPROCS=%d: parallel benchmark would silently measure the serial path; "+
			"re-run on a multi-core host (or raise GOMAXPROCS) for a meaningful number", p)
	}
}

func BenchmarkAllQuickParallel(b *testing.B) {
	requireRealParallelism(b)
	o := experiments.QuickOptions()
	o.Jobs = runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	for i := 0; i < b.N; i++ {
		if experiments.Render(experiments.RunAll(o)) == "" {
			b.Fatal("empty output")
		}
	}
}

// benchAllQuickPar runs the whole quick suite with grid cells serial
// (-j 1) and the island-partitioned engines at -p workers, so the ratio
// against BenchmarkAllQuickSerial isolates within-simulation parallelism.
func benchAllQuickPar(b *testing.B, workers int) {
	requireRealParallelism(b)
	o := experiments.QuickOptions()
	o.Jobs = 1
	o.Par = workers
	b.ReportMetric(float64(workers), "p")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	for i := 0; i < b.N; i++ {
		if experiments.Render(experiments.RunAll(o)) == "" {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkAllQuickParallelP2(b *testing.B)   { benchAllQuickPar(b, 2) }
func BenchmarkAllQuickParallelP4(b *testing.B)   { benchAllQuickPar(b, 4) }
func BenchmarkAllQuickParallelPMax(b *testing.B) { benchAllQuickPar(b, runtime.GOMAXPROCS(0)) }

// pdesLongOpts is the long-horizon multi-island configuration: full
// 8-island partition, enough references per island that epoch execution
// dominates barrier crossings. The -p 1 vs -p N ratio of these benches is
// the conservative engine's wall-clock speedup (perfdiff-gated).
func pdesLongOpts(par int) experiments.Options {
	return experiments.Options{SampleOps: 60_000, Seed: 1, Par: par}
}

func BenchmarkPDESLongHorizonSerial(b *testing.B) {
	o := pdesLongOpts(1)
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.PDES(o)
		if len(rows) != 8 {
			b.Fatalf("expected 8 islands, got %d", len(rows))
		}
	}
}

func BenchmarkPDESLongHorizonParallel(b *testing.B) {
	requireRealParallelism(b)
	o := pdesLongOpts(runtime.GOMAXPROCS(0))
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.PDES(o)
		if len(rows) != 8 {
			b.Fatalf("expected 8 islands, got %d", len(rows))
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.TableI()
		if res.Cores != 8 {
			b.Fatal("bad config")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.TableII(opts())
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig02LatencyVariation(b *testing.B) {
	var penalty, gain float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig02LatencyVariation(opts())
		penalty = res.DIMMReadPenalty()
		gain = res.DIMMWriteGain()
	}
	b.ReportMetric(penalty, "dimm-read-penalty-x") // paper ~2.9
	b.ReportMetric(gain, "dimm-write-gain-x")      // paper 2.3-6.1
}

func BenchmarkFig04PersistControl(b *testing.B) {
	var trans float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig04PersistControl(opts())
		trans = float64(rows[4].MeanElapsed) / float64(rows[0].MeanElapsed)
	}
	b.ReportMetric(trans, "trans-vs-dram-x") // paper ~8.7
}

func BenchmarkFig08HoldUp(b *testing.B) {
	var atxMs float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig08HoldUp(opts())
		atxMs = rows[0].HoldUp.Milliseconds()
	}
	b.ReportMetric(atxMs, "atx-busy-ms") // paper ~22
}

func BenchmarkFig08SnG(b *testing.B) {
	var busyMs float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig08SnG(opts())
		busyMs = rows[0].Report.Total.Milliseconds()
	}
	b.ReportMetric(busyMs, "busy-stop-ms") // paper 8.6-10.5
}

func BenchmarkFig14StallScaling(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		points, _ := experiments.Fig14StallScaling(opts())
		last = points[len(points)-1].Stall
	}
	b.ReportMetric(100*last, "stall-pct-at-1.8GHz")
}

func BenchmarkFig15ExecLatency(b *testing.B) {
	var fullLegacy, bFull float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig15ExecLatency(opts())
		fullLegacy = res.MeanFullOverLegacy()
		bFull = res.MeanBaselineOverFull()
	}
	b.ReportMetric(fullLegacy, "lightpc-vs-legacy-x") // paper ~1.12
	b.ReportMetric(bFull, "baseline-vs-lightpc-x")    // paper ~2.8
}

func BenchmarkFig16ReadLatency(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig16ReadLatency(opts())
		penalty = res.MeanPenalty()
	}
	b.ReportMetric(penalty, "read-penalty-x") // paper ~9 (7-14.8)
}

func BenchmarkFig17Stream(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig17Stream(opts())
		norm = res.MeanNormalized()
	}
	b.ReportMetric(100*norm, "bandwidth-pct-of-legacy") // paper ~78
}

func BenchmarkFig18PowerEnergy(b *testing.B) {
	var powerRatio, saving float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig18PowerEnergy(opts())
		powerRatio = res.MeanPowerRatio()
		saving = res.MeanEnergySaving()
	}
	b.ReportMetric(100*powerRatio, "power-pct-of-legacy") // paper ~28
	b.ReportMetric(100*saving, "energy-saving-pct")       // paper ~69
}

func BenchmarkFig19Persistence(b *testing.B) {
	var sys, ack, sck float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig19Persistence(opts())
		sys = res.MeanRatio["SysPC"]
		ack = res.MeanRatio["A-CheckPC"]
		sck = res.MeanRatio["S-CheckPC"]
	}
	b.ReportMetric(sys, "syspc-x")     // paper ~1.6
	b.ReportMetric(ack, "a-checkpc-x") // paper ~8.8
	b.ReportMetric(sck, "s-checkpc-x") // paper ~2.4
}

func BenchmarkFig20Flush(b *testing.B) {
	var sysVsATX float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig20Flush(opts())
		for _, r := range rows {
			if r.Mechanism == "SysPC" {
				sysVsATX = r.VsATX
			}
		}
	}
	b.ReportMetric(sysVsATX, "syspc-flush-vs-atx-x") // paper ~172
}

func BenchmarkFig21Timeline(b *testing.B) {
	var downMc float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig21Timeline(opts())
		for _, r := range rows {
			if r.Mechanism == "LightPC" {
				downMc = float64(r.DownCycles) / 1e6
			}
		}
	}
	b.ReportMetric(downMc, "lightpc-stop-megacycles") // paper ~19
}

func BenchmarkFig22Scalability(b *testing.B) {
	var worstMs float64
	for i := 0; i < b.N; i++ {
		points, _ := experiments.Fig22Scalability(opts())
		for _, p := range points {
			if p.Cores == 64 && p.CacheBytes >= 40<<20 {
				worstMs = p.Total.Milliseconds()
			}
		}
	}
	b.ReportMetric(worstMs, "64core-40MB-stop-ms") // paper: fits 55 ms
}

func BenchmarkAblationXCC(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationXCC(opts())
		ratio = res.Ratio()
	}
	b.ReportMetric(ratio, "ablated-vs-full-x")
}

func BenchmarkAblationChannel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationChannel(opts())
		ratio = res.Ratio()
	}
	b.ReportMetric(ratio, "ablated-vs-full-x")
}

func BenchmarkAblationRowBuffer(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationRowBuffer(opts())
		ratio = res.Ratio()
	}
	b.ReportMetric(ratio, "ablated-vs-full-x")
}

func BenchmarkAblationBalance(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationBalance(opts())
		ratio = res.Ratio()
	}
	b.ReportMetric(ratio, "ablated-vs-full-x")
}

func BenchmarkAblationWearLevel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationWearLevel(opts())
		ratio = res.Ratio()
	}
	b.ReportMetric(ratio, "ablated-vs-full-x")
}

func BenchmarkRelatedWork(b *testing.B) {
	var wspVuln float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.RelatedWork(opts())
		for _, r := range rows {
			if r.Mechanism == "WSP" {
				wspVuln = r.Vulnerable.Seconds()
			}
		}
	}
	b.ReportMetric(wspVuln, "wsp-vulnerable-sec") // SnG: zero
}

func BenchmarkHybridECC(b *testing.B) {
	var fixes float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.HybridECC(opts())
		fixes = float64(rows[len(rows)-1].HybridSymbolFix)
	}
	b.ReportMetric(fixes, "symbol-fixes-at-worst-rate")
}

func BenchmarkSCheckPCPeriod(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.SCheckPCPeriod(opts())
		worst = rows[0].Overhead
	}
	b.ReportMetric(worst, "shortest-period-overhead-x")
}

func BenchmarkSeedRotation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.SeedRotation(opts())
		ratio = float64(res.FixedSeedTargetWear) / float64(res.RotatedTargetWear+1)
	}
	b.ReportMetric(ratio, "adversary-blunted-x")
}

func BenchmarkFig21aSeries(b *testing.B) {
	var segments float64
	for i := 0; i < b.N; i++ {
		segs, _ := experiments.Fig21Series(opts())
		segments = float64(len(segs))
	}
	b.ReportMetric(segments, "timeline-segments")
}

func BenchmarkInterconnect(b *testing.B) {
	var busPenalty float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Interconnect(opts())
		var bus, xbar float64
		for _, r := range rows {
			if r.Cores == 8 {
				if r.Topology.String() == "shared-bus" {
					bus = float64(r.MeanLat)
				} else {
					xbar = float64(r.MeanLat)
				}
			}
		}
		busPenalty = bus / xbar
	}
	b.ReportMetric(busPenalty, "bus-vs-crossbar-x")
}

func BenchmarkEndurance(b *testing.B) {
	var years float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Endurance(opts())
		years = rows[2].YearsLeveled // 1e9 endurance
	}
	b.ReportMetric(years, "leveled-years-at-1e9")
}
