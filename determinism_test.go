package lightpc_test

// Reproducibility tests: the whole simulation is seeded and single-
// threaded, so identical configurations must yield bit-identical results —
// the property that makes every number in EXPERIMENTS.md regenerable.

import (
	"testing"

	lightpc "repro"
	"repro/internal/power"
	"repro/internal/workload"
)

func runOnce(t *testing.T, seed uint64) lightpc.RunResult {
	t.Helper()
	cfg := lightpc.DefaultConfig(lightpc.LightPCFull)
	cfg.Seed = seed
	cfg.SampleOps = 15_000
	p := lightpc.New(cfg)
	s, ok := workload.ByName("Memcached")
	if !ok {
		t.Fatal("missing spec")
	}
	return p.Run(s)
}

func TestRunDeterministic(t *testing.T) {
	a := runOnce(t, 7)
	b := runOnce(t, 7)
	if a.Elapsed != b.Elapsed || a.Instructions != b.Instructions ||
		a.ReadMisses != b.ReadMisses || a.EnergyJ != b.EnergyJ {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Result, b.Result)
	}
}

func TestRunSeedSensitive(t *testing.T) {
	a := runOnce(t, 7)
	b := runOnce(t, 8)
	if a.Elapsed == b.Elapsed && a.StallTime == b.StallTime {
		t.Fatal("different seeds produced identical timing (suspicious)")
	}
}

func TestSnGDeterministic(t *testing.T) {
	run := func() (total, goTotal int64) {
		cfg := lightpc.DefaultConfig(lightpc.LightPCFull)
		cfg.Seed = 11
		p := lightpc.New(cfg)
		p.Kernel().Tick(12)
		stop := p.PowerFail(0, power.ATX())
		rec, err := p.Recover(0)
		if err != nil {
			t.Fatal(err)
		}
		return int64(stop.Total), int64(rec.Total)
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 || g1 != g2 {
		t.Fatalf("SnG timing diverged: %d/%d vs %d/%d", s1, g1, s2, g2)
	}
}

func TestPlatformsShareWorkloadStreams(t *testing.T) {
	// The three platforms must see the same reference stream for a given
	// seed — otherwise cross-platform ratios compare different programs.
	collect := func(kind lightpc.Kind) uint64 {
		cfg := lightpc.DefaultConfig(kind)
		cfg.Seed = 3
		cfg.SampleOps = 5_000
		p := lightpc.New(cfg)
		s, _ := workload.ByName("gcc")
		res := p.Run(s)
		return res.Stats.Reads<<32 | res.Stats.Writes
	}
	legacy := collect(lightpc.LegacyPC)
	full := collect(lightpc.LightPCFull)
	if legacy != full {
		t.Fatal("platforms ran different reference streams")
	}
}
