// Package lightpc is a full-system simulation of LightPC — "LightPC:
// Hardware and Software Co-Design for Energy-Efficient Full System
// Persistence" (Lee, Kwon, Park, Jung; ISCA 2022) — reimplemented as a Go
// library.
//
// The package exposes the three platforms of the paper's evaluation:
//
//   - LegacyPC: a conventional DRAM-working-memory system (volatile);
//   - LightPCB: OC-PMEM as working memory with a conventional controller
//     (read-after-writes block — the paper's baseline);
//   - LightPCFull: OC-PMEM with the full persistent support module —
//     per-device row buffers, early-return writes, XCC read
//     reconstruction, Start-Gap wear leveling.
//
// A Platform bundles the memory subsystem, an 8-core CPU model, a mini-OS
// (PecOS), and the Stop-and-Go mechanism. Typical use:
//
//	p := lightpc.New(lightpc.DefaultConfig(lightpc.LightPCFull))
//	res := p.Run(mustSpec("Redis"))            // execute a Table II workload
//	stop := p.PowerFail(0)                     // power event -> SnG Stop
//	rep, err := p.Recover(0)                   // power back -> SnG Go
//
// Everything underneath lives in internal/ packages: device timing models
// (pram, dram, nvdimm, pmemdimm), the PSM, caches and CPU, the kernel and
// sng, the PMDK-like software stack, the baseline persistence mechanisms,
// and one experiment harness per figure/table of the paper.
package lightpc

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/memctrl"
	"repro/internal/power"
	"repro/internal/psm"
	"repro/internal/sim"
	"repro/internal/sng"
	"repro/internal/workload"
)

// Kind selects the platform configuration of Section VI.
type Kind int

// Platform kinds.
const (
	// LegacyPC keeps all processes and data in DRAM (Linux default).
	LegacyPC Kind = iota
	// LightPCB places everything on OC-PMEM but handles read-after-writes
	// like a conventional memory controller.
	LightPCB
	// LightPCFull adds early-return writes and XCC data reconstruction.
	LightPCFull
)

// String names the platform as in the paper.
func (k Kind) String() string {
	switch k {
	case LegacyPC:
		return "LegacyPC"
	case LightPCB:
		return "LightPC-B"
	case LightPCFull:
		return "LightPC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config assembles a platform.
type Config struct {
	Kind Kind

	CPU    cpu.Config
	PSM    psm.Config    // used by the OC-PMEM kinds
	DRAM   dram.Config   // used by LegacyPC
	DRAMs  int           // DRAM DIMM count (LegacyPC)
	CtrlNs float64       // DRAM controller latency (ns)
	Kernel kernel.Config // the mini-OS SnG operates on
	Power  power.Params

	// SampleOps is how many memory references each workload run samples
	// (results scale linearly; larger = smoother, slower).
	SampleOps uint64
	Seed      uint64

	// Energy attaches per-device joule meters (internal/energy) to the
	// whole stack. Off by default: disabled meters are nil and cost the
	// hot paths nothing, and every existing output stays byte-identical.
	Energy bool
}

// DefaultConfig mirrors Table I for the given kind.
func DefaultConfig(kind Kind) Config {
	cfg := Config{
		Kind:      kind,
		CPU:       cpu.DefaultConfig(),
		DRAM:      dram.DefaultConfig(),
		DRAMs:     6,
		CtrlNs:    8,
		Kernel:    kernel.DefaultConfig(),
		Power:     power.Default(),
		SampleOps: 200_000,
		Seed:      1,
	}
	switch kind {
	case LightPCFull:
		cfg.PSM = psm.DefaultConfig()
	case LightPCB:
		cfg.PSM = psm.BaselineConfig()
	case LegacyPC:
		cfg.Kernel.PersistentProcs = false
	}
	return cfg
}

// Platform is one assembled system.
type Platform struct {
	cfg Config

	backend cache.Backend
	psm     *psm.PSM
	data    *psm.DataStore
	dramC   *memctrl.DRAMController

	kern *kernel.Kernel
	sng  *sng.SnG

	energy *energy.Set     // nil unless cfg.Energy
	coreM  []*energy.Meter // per-core meters (subset of energy)
}

// New builds the platform.
func New(cfg Config) *Platform {
	p := &Platform{cfg: cfg}
	switch cfg.Kind {
	case LegacyPC:
		p.dramC = memctrl.NewDRAMController(cfg.DRAMs, cfg.DRAM,
			sim.FromNanoseconds(cfg.CtrlNs))
		p.backend = p.dramC
	case LightPCB, LightPCFull:
		pc := cfg.PSM
		pc.Seed = cfg.Seed
		p.psm = psm.New(pc)
		p.backend = &memctrl.PSMBackend{PSM: p.psm}
	default:
		panic(fmt.Sprintf("lightpc: unknown kind %v", cfg.Kind))
	}
	if cfg.Energy {
		p.energy = energy.NewSet()
		switch cfg.Kind {
		case LegacyPC:
			ctrlM := p.energy.Add(energy.NewMeter("memctrl", energy.DRAMCtrlSpec(cfg.Power)))
			dimmM := p.energy.Add(energy.NewMeter("dram", energy.DRAMArraySpec(cfg.Power, cfg.DRAMs)))
			p.dramC.SetEnergy(ctrlM, dimmM)
		default:
			psmM := p.energy.Add(energy.NewMeter("psm", energy.PSMSpec(cfg.Power)))
			pramM := p.energy.Add(energy.NewMeter("pram", energy.PRAMArraySpec(cfg.Power, cfg.PSM.DIMMs)))
			p.psm.SetEnergy(psmM, pramM)
		}
		for i := 0; i < cfg.CPU.Cores; i++ {
			m := energy.NewMeter(fmt.Sprintf("core%d", i), energy.CPUCoreSpec(cfg.Power))
			p.energy.Add(m)
			p.coreM = append(p.coreM, m)
		}
		p.cfg.CPU.Energy = p.coreM
	}
	kc := cfg.Kernel
	kc.Seed = cfg.Seed
	p.kern = kernel.New(kc)
	p.sng = sng.New(p.kern)
	p.sng.P = p.psm // nil for LegacyPC
	p.sng.Energy = p.energy
	p.sng.CoreEnergy = p.coreM
	return p
}

// Config reports the platform configuration.
func (p *Platform) Config() Config { return p.cfg }

// Kind reports the platform kind.
func (p *Platform) Kind() Kind { return p.cfg.Kind }

// Backend exposes the memory backend (for layering, e.g. PMDK modes).
func (p *Platform) Backend() cache.Backend { return p.backend }

// PSM exposes the persistent support module (nil on LegacyPC).
func (p *Platform) PSM() *psm.PSM { return p.psm }

// DataStore returns the content-carrying view of OC-PMEM — real bytes,
// XCC parity, device-failure injection (nil on LegacyPC). Created lazily;
// repeated calls return the same store.
func (p *Platform) DataStore() *psm.DataStore {
	if p.psm == nil {
		return nil
	}
	if p.data == nil {
		p.data = psm.NewDataStore(p.psm)
	}
	return p.data
}

// DRAM exposes the DRAM controller (nil on OC-PMEM kinds).
func (p *Platform) DRAM() *memctrl.DRAMController { return p.dramC }

// Kernel exposes the mini-OS.
func (p *Platform) Kernel() *kernel.Kernel { return p.kern }

// SnG exposes the Stop-and-Go mechanism.
func (p *Platform) SnG() *sng.SnG { return p.sng }

// Energy exposes the per-device meter set (nil unless Config.Energy).
func (p *Platform) Energy() *energy.Set { return p.energy }

// RunResult is one workload execution plus its power/energy accounting.
type RunResult struct {
	cpu.Result
	Workload string
	// AvgPowerW is the platform draw during the run.
	AvgPowerW float64
	// EnergyJ integrates power over the elapsed time.
	EnergyJ float64
}

// busyState describes the platform's components under load.
func (p *Platform) busyState(activeCores int) power.State {
	idle := p.cfg.CPU.Cores - activeCores
	if idle < 0 {
		idle = 0
	}
	s := power.State{ActiveCores: activeCores, IdleCores: idle}
	if p.cfg.Kind == LegacyPC {
		s.DRAMDIMMs = p.cfg.DRAMs
		s.DRAMCtrl = true
	} else {
		s.PRAMDIMMs = p.cfg.PSM.DIMMs
		s.PSM = true
	}
	return s
}

// Run executes one Table II workload on the platform and returns timing and
// energy. Multithreaded specs fan out across all cores.
func (p *Platform) Run(spec workload.Spec) RunResult {
	gens := cpu.Fanout(spec, p.cfg.CPU.Cores, p.cfg.SampleOps, p.cfg.Seed)
	return p.RunGenerators(spec.Name, gens, spec.MultiThread)
}

// RunGenerators executes arbitrary generators (one per core).
func (p *Platform) RunGenerators(name string, gens []workload.Generator, multi bool) RunResult {
	// Each run is its own timeline starting at 0: rebase the device meters
	// so an earlier Stop/Go epoch cannot leak into this run's window, then
	// integrate them over the elapsed wall-clock (cpu.Run syncs the core
	// meters itself).
	p.energy.Rebase(0)
	res := cpu.Run(p.cfg.CPU, 0, gens, p.backend)
	p.energy.Sync(sim.Time(0).Add(res.Elapsed))
	active := len(gens)
	if active > p.cfg.CPU.Cores {
		active = p.cfg.CPU.Cores
	}
	watts := p.cfg.Power.Watts(p.busyState(active))
	return RunResult{
		Result:    res,
		Workload:  name,
		AvgPowerW: watts,
		EnergyJ:   power.EnergyJ(watts, res.Elapsed),
	}
}

// PowerFail triggers SnG's Stop at now against the given PSU's spec
// hold-up window and then drops power. It returns the Stop report; if the
// report is incomplete the EP-cut was not drawn and recovery will cold
// boot.
func (p *Platform) PowerFail(now sim.Time, psu power.PSU) sng.StopReport {
	deadline := now.Add(sim.Duration(psu.SpecHoldUp))
	rep := p.sng.Stop(now, deadline)
	p.kern.PowerLoss()
	return rep
}

// Recover runs SnG's Go at now. ErrNoCommit means a cold boot is needed
// (use ColdBoot).
func (p *Platform) Recover(now sim.Time) (sng.GoReport, error) {
	return p.sng.Go(now)
}

// ColdBoot rebuilds the kernel from scratch (the path taken when no EP-cut
// commit exists). All previous execution state is lost — but OC-PMEM is
// not: persistent memory survives the outage even without a commit, so
// application-level recovery (journal replay, pool rollback, checkpoint
// restore) still finds its data.
func (p *Platform) ColdBoot() {
	kc := p.cfg.Kernel
	kc.Seed = p.cfg.Seed + 1
	p.kern = kernel.NewWithBank(kc, p.kern.OCPMEM)
	p.sng = sng.New(p.kern)
	p.sng.P = p.psm
	p.sng.Energy = p.energy
	p.sng.CoreEnergy = p.coreM
}
