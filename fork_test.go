package lightpc

import (
	"encoding/json"
	"testing"

	"repro/internal/sng"
	"repro/internal/snapshot"
)

// TestForkCompleteness pins Platform's (and SnG's, which Fork value-copies
// and rewires) field lists: a new mutable field fails here until Fork
// handles it.
func TestForkCompleteness(t *testing.T) {
	snapshot.CheckCovered(t, Platform{},
		"cfg", "backend", "psm", "data", "dramC", "kern", "sng", "energy", "coreM")
	snapshot.CheckCovered(t, sng.SnG{},
		"K", "P", "T", "Unbalanced", "Obs", "Energy", "CoreEnergy")
}

func runJSON(t *testing.T, res RunResult) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestForkRunEquivalence checks a fork of a fresh platform behaves exactly
// like a freshly built platform, for both backends.
func TestForkRunEquivalence(t *testing.T) {
	for _, kind := range []Kind{LegacyPC, LightPCFull} {
		cfg := DefaultConfig(kind)
		cfg.SampleOps = 5_000
		spec := mustSpec(t, "Redis")
		want := runJSON(t, New(cfg).Run(spec))
		got := runJSON(t, New(cfg).Fork().Run(spec))
		if got != want {
			t.Fatalf("%v: forked run diverged from fresh run\nforked: %s\nfresh:  %s", kind, got, want)
		}
	}
}

// TestForkIsolation runs a workload on one fork and checks the base and a
// later fork are untouched by it.
func TestForkIsolation(t *testing.T) {
	cfg := DefaultConfig(LightPCFull)
	cfg.SampleOps = 5_000
	spec := mustSpec(t, "SQLite")
	base := New(cfg)
	first := runJSON(t, base.Fork().Run(spec))
	if base.Kernel().OCPMEM == nil {
		t.Fatal("base lost its bank")
	}
	second := runJSON(t, base.Fork().Run(spec))
	if first != second {
		t.Fatalf("base was mutated by a fork's run:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// TestForkEnergyRewired checks a metered platform's fork gets its own
// meter set: the fork's meters advance while the base's stay put.
func TestForkEnergyRewired(t *testing.T) {
	cfg := DefaultConfig(LightPCFull)
	cfg.SampleOps = 5_000
	cfg.Energy = true
	base := New(cfg)
	f := base.Fork()
	if f.Energy() == base.Energy() {
		t.Fatal("fork shares the energy set with the base")
	}
	baseBefore, _ := json.Marshal(base.Energy().SnapshotJ())
	f.Run(mustSpec(t, "Redis"))
	baseAfter, _ := json.Marshal(base.Energy().SnapshotJ())
	if string(baseBefore) != string(baseAfter) {
		t.Fatalf("base meters moved while the fork ran:\nbefore: %s\nafter:  %s", baseBefore, baseAfter)
	}
	if f.Energy().TotalJ() <= base.Energy().TotalJ() {
		t.Fatal("fork's meters did not advance past the base's")
	}
}

// TestSnapshotFork checks the frozen-snapshot surface: every Fork() off
// one Snapshot yields the same behaviour, even after siblings ran.
func TestSnapshotFork(t *testing.T) {
	cfg := DefaultConfig(LightPCFull)
	cfg.SampleOps = 5_000
	spec := mustSpec(t, "gcc")
	snap := New(cfg).Snapshot()
	first := runJSON(t, snap.Fork().Run(spec))
	snap.Fork().ColdBoot() // consume and discard an unrelated fork
	second := runJSON(t, snap.Fork().Run(spec))
	if first != second {
		t.Fatalf("snapshot forks diverged:\nfirst:  %s\nsecond: %s", first, second)
	}
}
