package lightpc

import (
	"fmt"

	"repro/internal/memctrl"
	"repro/internal/snapshot"
)

// Fork returns a deep copy of the platform: kernel (processes, cores,
// devices, wait queues, both memory banks), the full memory subsystem
// (PSM row buffers, wear leveler, PRAM cooling windows and RNG streams, or
// the DRAM controller's bank state), the lazily created data store, and —
// when metering is on — the energy meter set, rewired so the fork's
// devices charge the fork's meters. The copy and the source then evolve
// independently: running, power-failing, or recovering one is invisible to
// the other, and a forked run is byte-identical to rebuilding the platform
// and replaying the same inputs (forks copy state, they do not re-derive
// it).
//
// Observer attachments are not forked: an obs tracer on the SnG and any
// bank write observers stay with (or are dropped from) the source, because
// an observer instance records one timeline. Fork a quiet platform, then
// instrument the copy.
func (p *Platform) Fork() *Platform {
	out := &Platform{cfg: p.cfg}
	if p.dramC != nil {
		out.dramC = p.dramC.Clone()
		out.backend = out.dramC
	}
	if p.psm != nil {
		out.psm = p.psm.Clone()
		out.backend = &memctrl.PSMBackend{PSM: out.psm}
	}
	if p.data != nil {
		out.data = p.data.CloneFor(out.psm)
	}
	if p.energy != nil {
		out.energy = p.energy.Clone()
		for i := range p.coreM {
			out.coreM = append(out.coreM, out.energy.Lookup(fmt.Sprintf("core%d", i)))
		}
		out.cfg.CPU.Energy = out.coreM
		switch {
		case out.dramC != nil:
			out.dramC.SetEnergy(out.energy.Lookup("memctrl"), out.energy.Lookup("dram"))
		case out.psm != nil:
			out.psm.SetEnergy(out.energy.Lookup("psm"), out.energy.Lookup("pram"))
		}
	}
	out.kern = p.kern.Clone()
	s := *p.sng
	s.K = out.kern
	s.P = out.psm
	s.Obs = nil
	s.Energy = out.energy
	s.CoreEnergy = out.coreM
	out.sng = &s
	snapshot.Default().RecordFork(p.forkBytes())
	return out
}

// forkBytes approximates the mutable state one fork duplicates — the
// dominant arenas, counted without walking them: bank words (key+value
// pairs), PCBs, and the data store's line content. An observability
// estimate, not an exact allocator tally.
func (p *Platform) forkBytes() uint64 {
	var n uint64
	n += 16 * uint64(p.kern.OCPMEM.Len())
	if p.kern.DRAM != nil {
		n += 16 * uint64(p.kern.DRAM.Len())
	}
	n += 128 * uint64(len(p.kern.Procs))
	if p.data != nil {
		n += 64 * uint64(p.data.Lines())
	}
	return n
}

// PlatformSnapshot is a frozen deep copy of a platform — a template that
// hands out any number of independent forks. The snapshot itself is never
// run: Snapshot copies the source once, and each Fork copies the frozen
// image, so forks taken before and after the source keeps running are
// identical.
type PlatformSnapshot struct {
	frozen *Platform
}

// Snapshot freezes the platform's current state into a reusable template.
func (p *Platform) Snapshot() *PlatformSnapshot {
	return &PlatformSnapshot{frozen: p.Fork()}
}

// Fork returns a fresh platform initialized from the frozen image.
func (s *PlatformSnapshot) Fork() *Platform { return s.frozen.Fork() }
