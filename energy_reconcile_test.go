package lightpc_test

import (
	"math"
	"testing"

	lightpc "repro"
	"repro/internal/power"
	"repro/internal/workload"
)

// TestMeterSumMatchesSystemEnergy pins the reconciliation between the two
// energy models: the coarse system curve (RunResult.EnergyJ = busy-state
// watts × elapsed) and the per-device meter set. The meter specs are
// calibrated from the same power.Params, and every metered component is
// resident for the whole run window, so the static (state-power) joules
// must sum to the system figure exactly — the per-op dynamic energy is
// the meters' refinement on top (the residual DESIGN.md documents).
func TestMeterSumMatchesSystemEnergy(t *testing.T) {
	for _, kind := range []lightpc.Kind{lightpc.LegacyPC, lightpc.LightPCFull} {
		for _, name := range []string{"bzip2", "Redis"} { // single- and multi-threaded
			spec, ok := workload.ByName(name)
			if !ok {
				t.Fatalf("workload %q missing", name)
			}
			cfg := lightpc.DefaultConfig(kind)
			cfg.SampleOps = 5_000
			cfg.Energy = true
			p := lightpc.New(cfg)
			rr := p.Run(spec)

			var stateJ, opJ float64
			for _, m := range p.Energy().Meters() {
				stateJ += m.StateJ()
				opJ += m.OpJ()
			}
			if rr.EnergyJ <= 0 {
				t.Fatalf("%v/%s: system energy %v, want > 0", kind, name, rr.EnergyJ)
			}
			if rel := math.Abs(stateJ-rr.EnergyJ) / rr.EnergyJ; rel > 1e-9 {
				t.Errorf("%v/%s: meter state-joules %.12g vs system %.12g (rel err %.3g, want ≤ 1e-9)",
					kind, name, stateJ, rr.EnergyJ, rel)
			}
			if opJ <= 0 {
				t.Errorf("%v/%s: dynamic op-joules %v, want > 0 (workload charged no per-op energy)", kind, name, opJ)
			}
		}
	}
}

// TestEnergyOffMetersAbsent pins the disabled default: no meter set is
// built, and the run still works with every hot-path meter nil.
func TestEnergyOffMetersAbsent(t *testing.T) {
	spec, _ := workload.ByName("Redis")
	p := lightpc.New(lightpc.DefaultConfig(lightpc.LightPCFull))
	if p.Energy() != nil {
		t.Fatalf("Energy() = %v with Config.Energy=false, want nil", p.Energy())
	}
	rr := p.Run(spec)
	if rr.Elapsed <= 0 {
		t.Fatalf("run with energy off did not advance time")
	}
	stop := p.PowerFail(0, power.ATX())
	if stop.Energy != nil {
		t.Fatalf("StopReport.Energy = %v with energy off, want nil", stop.Energy)
	}
}
