// Command lightpc-bench runs the paper's evaluation experiments and prints
// the tables/series each figure reports.
//
// Usage:
//
//	lightpc-bench                 # run everything at full fidelity
//	lightpc-bench -exp fig15      # one experiment
//	lightpc-bench -list           # list experiment ids
//	lightpc-bench -quick          # trimmed sweeps (CI smoke)
//	lightpc-bench -samples 200000 # more samples per workload run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "use trimmed sweeps")
		samples = flag.Uint64("samples", 0, "memory references sampled per run (0 = default)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		format  = flag.String("format", "text", "output format: text | json")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.All() {
			fmt.Printf("%-10s %s\n", n.ID, n.Desc)
		}
		return
	}

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	if *samples > 0 {
		o.SampleOps = *samples
	}
	o.Seed = *seed

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	run := func(n experiments.Named) {
		tables := n.Run(o)
		if *format == "json" {
			payload := struct {
				ID     string          `json:"id"`
				Desc   string          `json:"description"`
				Tables []*report.Table `json:"tables"`
			}{n.ID, n.Desc, tables}
			if err := enc.Encode(payload); err != nil {
				fmt.Fprintf(os.Stderr, "lightpc-bench: %v\n", err)
				os.Exit(1)
			}
			return
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}

	if *exp == "all" {
		for _, n := range experiments.All() {
			run(n)
		}
		return
	}
	n, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "lightpc-bench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(n)
}
