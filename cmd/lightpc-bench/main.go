// Command lightpc-bench runs the paper's evaluation experiments and prints
// the tables/series each figure reports.
//
// Usage:
//
//	lightpc-bench                 # run everything at full fidelity
//	lightpc-bench -exp fig15      # one experiment
//	lightpc-bench -list           # list experiment ids
//	lightpc-bench -quick          # trimmed sweeps (CI smoke)
//	lightpc-bench -samples 200000 # more samples per workload run
//	lightpc-bench -j 8            # run grid cells on 8 workers
//	lightpc-bench -p 8            # 8 island workers inside parallel sims
//	lightpc-bench -progress       # per-cell wall-clock progress on stderr
//	lightpc-bench -quick -cpuprofile cpu.out   # pprof the suite
//	lightpc-bench -quick -memprofile mem.out   # heap profile at exit
//
// The grid-shaped experiments decompose into independent cells executed
// across -j workers (internal/runner); the island-partitioned simulations
// additionally parallelize inside one run across -p workers
// (internal/sim). The tables are byte-for-byte identical at any -j and
// any -p, including the fully serial -j 1 -p 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// progressReporter prints one line per finished cell with its wall-clock
// time. Workers call the hooks concurrently.
type progressReporter struct {
	mu     sync.Mutex
	starts map[string]time.Time
	done   int
}

func newProgressReporter() *progressReporter {
	return &progressReporter{starts: map[string]time.Time{}}
}

func (p *progressReporter) onStart(label string) {
	p.mu.Lock()
	p.starts[label] = time.Now()
	p.mu.Unlock()
}

func (p *progressReporter) onDone(label string) {
	p.mu.Lock()
	elapsed := time.Since(p.starts[label])
	delete(p.starts, label)
	p.done++
	n := p.done
	p.mu.Unlock()
	fmt.Fprintf(os.Stderr, "[%4d] %-40s %8.1fms\n",
		n, label, float64(elapsed.Microseconds())/1000)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "use trimmed sweeps")
		samples  = flag.Uint64("samples", 0, "memory references sampled per run (0 = default)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		format   = flag.String("format", "text", "output format: text | json")
		jobs     = flag.Int("j", 0, "worker count for grid cells (0 = GOMAXPROCS, 1 = serial)")
		par      = flag.Int("p", 0, "island workers inside one parallel simulation (0 = GOMAXPROCS, 1 = serial)")
		progress = flag.Bool("progress", false, "report per-cell wall-clock progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpc-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lightpc-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lightpc-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lightpc-bench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, n := range experiments.All() {
			fmt.Printf("%-10s %s\n", n.ID, n.Desc)
		}
		return
	}

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	if *samples > 0 {
		o.SampleOps = *samples
	}
	o.Seed = *seed
	o.Jobs = *jobs
	o.Par = *par
	if *progress {
		rep := newProgressReporter()
		o.OnCellStart = rep.onStart
		o.OnCellDone = rep.onDone
		j := o.Jobs
		if j <= 0 {
			j = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "lightpc-bench: %d workers\n", j)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	emit := func(n experiments.Named, tables []*report.Table) {
		if *format == "json" {
			payload := struct {
				ID     string          `json:"id"`
				Desc   string          `json:"description"`
				Tables []*report.Table `json:"tables"`
			}{n.ID, n.Desc, tables}
			if err := enc.Encode(payload); err != nil {
				fmt.Fprintf(os.Stderr, "lightpc-bench: %v\n", err)
				os.Exit(1)
			}
			return
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}

	if *exp == "all" {
		start := time.Now()
		for _, out := range experiments.RunAll(o) {
			emit(out.Named, out.Tables)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "lightpc-bench: suite completed in %.1fs\n",
				time.Since(start).Seconds())
		}
		return
	}
	n, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "lightpc-bench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	emit(n, n.Run(o))
}
