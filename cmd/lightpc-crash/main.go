// Command lightpc-crash is the crash-point adversary: it drops the power
// rails at chosen (or searched, or fuzzed) instants of the SnG Stop
// sequence and checks every recovery invariant — committed cuts must
// restore the exact pre-cut system, uncommitted cuts must cold-boot to a
// byte-clean pre-cut state with no staged residue readable anywhere.
//
// Usage:
//
//	lightpc-crash -mode cut -offset 4ms            # one cut, one verdict
//	lightpc-crash -mode bisect                     # locate the commit instant
//	lightpc-crash -mode sweep -seeds 1,2 -j 4      # cut matrix over workloads
//	lightpc-crash -mode enum -target all           # word-granular enumeration
//
// All output is deterministic: same flags, same bytes (sweep included, at
// any -j). The exit status is 1 when any invariant is violated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/crashpoint"
	"repro/internal/sim"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lightpc-crash: "+format+"\n", args...)
	os.Exit(1)
}

func parseSeeds(s string) []uint64 {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			fatalf("bad seed %q: %v", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("no seeds in %q", s)
	}
	return out
}

func parseList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// emit prints v as indented JSON (the machine-readable report).
func emit(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(b))
}

func main() {
	var (
		mode    = flag.String("mode", "cut", "cut | bisect | sweep | enum")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		seeds   = flag.String("seeds", "1", "comma-separated seeds (sweep mode)")
		wl      = flag.String("workload", "Redis", "Table II workload driving the application phase")
		wls     = flag.String("workloads", "Redis,SQLite", "comma-separated workloads (sweep mode)")
		cores   = flag.Int("cores", 4, "core count")
		user    = flag.Int("user", 24, "user processes")
		kprocs  = flag.Int("kernelprocs", 16, "kernel threads")
		devices = flag.Int("devices", 64, "dpm_list length")
		ticks   = flag.Int("ticks", 6, "scheduler ticks before the power event")
		appOps  = flag.Int("appops", 96, "application persistence operations staged before the cut")
		holdup  = flag.Duration("holdup", 0, "hold-up window (0 = ATX spec 16ms)")
		offset  = flag.Duration("offset", 0, "cut offset into the Stop sequence (cut mode)")
		cuts    = flag.Int("cuts", 8, "fuzzed cut offsets per cell on top of the stratified grid (sweep mode)")
		jobs    = flag.Int("j", 1, "sweep workers (0 = GOMAXPROCS); output is identical at any level")
		target  = flag.String("target", "all", "enum targets: pool,ckpt,hibernate,journal or all")
		quiet   = flag.Bool("q", false, "suppress the JSON report; only the verdict line")
	)
	flag.Parse()

	sc := crashpoint.Scenario{
		Seed:        *seed,
		Cores:       *cores,
		UserProcs:   *user,
		KernelProcs: *kprocs,
		Devices:     *devices,
		Ticks:       *ticks,
		Workload:    *wl,
		AppOps:      *appOps,
		Holdup:      sim.Duration(holdup.Nanoseconds()) * sim.Nanosecond,
	}

	violations := 0
	switch *mode {
	case "cut":
		s, err := crashpoint.Build(sc)
		if err != nil {
			fatalf("%v", err)
		}
		off := sim.Duration(offset.Nanoseconds()) * sim.Nanosecond
		if off <= 0 {
			off = s.Window
		}
		out := s.CutAt(off)
		violations = len(out.Violations)
		if !*quiet {
			emit(out)
		}
	case "bisect":
		rep, err := crashpoint.Bisect(sc)
		if err != nil {
			fatalf("%v", err)
		}
		violations = len(rep.Violations)
		if !*quiet {
			os.Stdout.Write(rep.JSON())
		}
		fmt.Printf("commit instant %s into a %s window (%d probes, vulnerable [%d, %d] ps)\n",
			sim.Duration(rep.CommitInstantPs), sim.Duration(rep.WindowPs),
			len(rep.Probes), rep.FirstVulnerablePs, rep.LastVulnerablePs)
	case "sweep":
		rep, err := crashpoint.Sweep(crashpoint.SweepConfig{
			Base:        sc,
			Workloads:   parseList(*wls),
			Seeds:       parseSeeds(*seeds),
			CutsPerCell: *cuts,
			Jobs:        *jobs,
		})
		if err != nil {
			fatalf("%v", err)
		}
		violations = rep.TotalViolations
		if !*quiet {
			os.Stdout.Write(rep.JSON())
		}
		fmt.Printf("%d cells, %d cuts, %d violations\n",
			len(rep.Cells), rep.TotalCuts, rep.TotalViolations)
	case "enum":
		targets := map[string]bool{}
		for _, tg := range parseList(*target) {
			targets[tg] = true
		}
		all := targets["all"]
		var found []crashpoint.Violation
		run := func(name string, fn func() []crashpoint.Violation) {
			if !all && !targets[name] {
				return
			}
			v := fn()
			found = append(found, v...)
			fmt.Printf("enum %s: %d violations\n", name, len(v))
		}
		run("pool", func() []crashpoint.Violation { return crashpoint.CheckPool(*seed, 6, 5) })
		run("ckpt", func() []crashpoint.Violation { return crashpoint.CheckManager(*seed, 40) })
		run("hibernate", func() []crashpoint.Violation { return crashpoint.CheckHibernate(*seed, 5) })
		run("journal", func() []crashpoint.Violation { return crashpoint.CheckJournal(*seed, 30) })
		violations = len(found)
		if !*quiet && len(found) > 0 {
			emit(found)
		}
	default:
		fatalf("unknown mode %q", *mode)
	}

	if violations > 0 {
		fmt.Printf("FAIL: %d invariant violations\n", violations)
		os.Exit(1)
	}
	fmt.Println("OK: all recovery invariants hold")
}
