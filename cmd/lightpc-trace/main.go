// Command lightpc-trace inspects the Table II workload models: it drains a
// generator and prints the traffic characterization, optionally dumping the
// first references.
//
// Usage:
//
//	lightpc-trace                      # characterize all 17 workloads
//	lightpc-trace -workload mcf -n 100000
//	lightpc-trace -workload wrf -dump 20
//	lightpc-trace -workload gcc -record gcc.lpct
//	lightpc-trace -replay gcc.lpct -dump 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func characterize(s workload.Spec, n uint64, seed uint64, dump int) {
	g := workload.NewSynthetic(s, n, seed)
	var batch [workload.DefaultBatchSize]workload.Ref
	i := 0
	for {
		filled := g.NextBatch(batch[:])
		if filled == 0 {
			break
		}
		for _, r := range batch[:filled] {
			if i < dump {
				fmt.Printf("  %-5s addr=%#012x gap=%d\n",
					r.Access.Op, r.Access.Addr, r.ComputeCycles)
			}
			i++
		}
	}
	st := g.Stats()
	fmt.Printf("%-10s %-14s reads=%-8d writes=%-8d r/w=%-6.1f gap=%d cyc  footprint=%dMB\n",
		s.Name, s.Category, st.Reads, st.Writes, st.ReadWriteRatio(),
		workload.GapCycles(s), s.FootprintBytes>>20)
}

func main() {
	var (
		name   = flag.String("workload", "", "workload name (empty = all)")
		n      = flag.Uint64("n", 50000, "references to sample")
		seed   = flag.Uint64("seed", 1, "generator seed")
		dump   = flag.Int("dump", 0, "print the first N references")
		record = flag.String("record", "", "write the trace to this file")
		replay = flag.String("replay", "", "replay a recorded trace file")
	)
	flag.Parse()

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpc-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		rp, err := workload.NewReplay(*replay, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpc-trace: %v\n", err)
			os.Exit(1)
		}
		var batch [workload.DefaultBatchSize]workload.Ref
		reads, writes := 0, 0
		i := 0
		for {
			filled := rp.NextBatch(batch[:])
			if filled == 0 {
				break
			}
			for _, r := range batch[:filled] {
				if i < *dump {
					fmt.Printf("  %-5s addr=%#012x gap=%d\n", r.Access.Op, r.Access.Addr, r.ComputeCycles)
				}
				i++
				if r.Access.Op == 0 {
					reads++
				} else {
					writes++
				}
			}
		}
		if err := rp.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "lightpc-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d refs (%d reads, %d writes)\n", *replay, i, reads, writes)
		return
	}

	if *record != "" {
		s, ok := workload.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "lightpc-trace: -record needs a valid -workload\n")
			os.Exit(2)
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpc-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		wrote, err := workload.WriteTrace(f, workload.NewSynthetic(s, *n, *seed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpc-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d refs of %s to %s\n", wrote, s.Name, *record)
		return
	}

	if *name == "" {
		for _, s := range workload.Table2() {
			characterize(s, *n, *seed, 0)
		}
		return
	}
	s, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "lightpc-trace: unknown workload %q\n", *name)
		fmt.Fprintln(os.Stderr, "known workloads:")
		for _, w := range workload.Table2() {
			fmt.Fprintf(os.Stderr, "  %s\n", w.Name)
		}
		os.Exit(2)
	}
	characterize(s, *n, *seed, *dump)
}
