// Command lightpc-benchseed snapshots the benchmark suite into
// BENCH_SEED.json: it times the quick experiment suite serially and through
// the parallel runner (-j, independent experiments fanned out), times the
// long-horizon conservative-parallel scenario serially and island-parallel
// (-p, one worker per island), then runs every `go test -bench` benchmark
// once with -benchmem and captures each bench's ns/op, B/op, allocs/op,
// plus its custom paper metrics. cmd/lightpc-perfdiff compares two
// snapshots.
//
// The process pins GOMAXPROCS to the real CPU count before timing anything
// (an inherited GOMAXPROCS=1 would silently record a crippled snapshot)
// and records num_cpu alongside the speedups: a -j or -p figure is only
// meaningful relative to the cores it ran on, and on a single-CPU host
// both are honestly ~1.0x.
//
// Usage:
//
//	lightpc-benchseed -out BENCH_SEED.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/crashpoint"
	"repro/internal/experiments"
)

// benchLine is one parsed `go test -bench -benchmem` result line. The
// allocator columns get first-class fields so perf diffs can gate on
// allocation regressions, not just time.
type benchLine struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type seed struct {
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	SerialMs   float64 `json:"suite_serial_ms"`
	ParallelMs float64 `json:"suite_parallel_ms"`
	SpeedupX   float64 `json:"runner_speedup_x"`

	// The -p axis: the long-horizon PDES scenario at one worker vs one
	// worker per island (intra-experiment parallelism, where -j cannot
	// help because it is a single experiment).
	PDESSerialMs   float64 `json:"pdes_serial_ms"`
	PDESParallelMs float64 `json:"pdes_parallel_ms"`
	PDESSpeedupX   float64 `json:"pdes_speedup_x"`

	// The snapshot axis: one crash-sweep cell with a fresh Build per cut
	// (the historical cell) vs one Build forked per cut (the shipping
	// cell). Orthogonal to -j/-p: this is single-cell wall time, the win
	// every sweep worker gets regardless of fan-out.
	SweepRebuildMs float64 `json:"sweep_rebuild_ms"`
	SweepForkMs    float64 `json:"sweep_fork_ms"`
	SweepSpeedupX  float64 `json:"sweep_speedup_x"`

	Benches []benchLine `json:"benches"`
}

// timeSuite runs the full quick experiment suite at the given worker count
// and returns its wall-clock plus the rendered output (so the two runs can
// be checked for byte-equality — a corrupted-parallelism snapshot would be
// worthless).
func timeSuite(jobs int) (float64, string) {
	o := experiments.QuickOptions()
	o.Jobs = jobs
	start := time.Now()
	out := experiments.Render(experiments.RunAll(o))
	return float64(time.Since(start).Microseconds()) / 1000, out
}

// timePDES runs the long-horizon conservative-parallel scenario at the
// given island-worker count and returns its wall-clock plus the rendered
// table (checked for byte-equality across worker counts — a snapshot whose
// parallel run computed different physics would be worthless).
func timePDES(par int) (float64, string) {
	o := experiments.Options{SampleOps: 60_000, Seed: 1, Par: par}
	start := time.Now()
	_, tbl := experiments.PDES(o)
	return float64(time.Since(start).Microseconds()) / 1000, tbl.String()
}

// timeSweep runs one crash-sweep cell both ways — a fresh Build for every
// cut offset, then one Build forked per cut — and returns both wall-clocks
// plus each path's concatenated CutOutcome JSON (checked for byte-equality;
// a fork that diverged from a rebuild would make the speedup meaningless).
func timeSweep() (rebuildMs, forkMs float64, rebuildOut, forkOut string, err error) {
	sc := crashpoint.Scenario{Seed: 1, Workload: "Redis", AppOps: 2000}
	const label, fuzz = "benchseed/sweep", 4

	render := func(outs []crashpoint.CutOutcome) (string, error) {
		j, err := json.Marshal(outs)
		return string(j), err
	}

	start := time.Now()
	ref, err := crashpoint.Build(sc)
	if err != nil {
		return 0, 0, "", "", err
	}
	offsets := crashpoint.CellOffsets(ref, label, fuzz)
	var outs []crashpoint.CutOutcome
	for _, off := range offsets {
		s, err := crashpoint.Build(sc)
		if err != nil {
			return 0, 0, "", "", err
		}
		outs = append(outs, s.CutAt(off))
	}
	rebuildMs = float64(time.Since(start).Microseconds()) / 1000
	if rebuildOut, err = render(outs); err != nil {
		return 0, 0, "", "", err
	}

	start = time.Now()
	base, err := crashpoint.Build(sc)
	if err != nil {
		return 0, 0, "", "", err
	}
	outs = outs[:0]
	for _, off := range crashpoint.CellOffsets(base, label, fuzz) {
		outs = append(outs, base.Fork().CutAt(off))
	}
	forkMs = float64(time.Since(start).Microseconds()) / 1000
	if forkOut, err = render(outs); err != nil {
		return 0, 0, "", "", err
	}
	return rebuildMs, forkMs, rebuildOut, forkOut, nil
}

// parseBench extracts "Benchmark..." result lines: name, ns/op, and any
// trailing custom metrics ("12.3 unit" pairs).
func parseBench(out string) []benchLine {
	var lines []benchLine
	for _, l := range strings.Split(out, "\n") {
		if !strings.HasPrefix(l, "Benchmark") {
			continue
		}
		f := strings.Fields(l)
		// name, iterations, value, "ns/op", then metric pairs.
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		b := benchLine{Name: strings.TrimSuffix(f[0], "-"+strconv.Itoa(runtime.GOMAXPROCS(0))), NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[f[i+1]] = v
			}
		}
		lines = append(lines, b)
	}
	return lines
}

func main() {
	out := flag.String("out", "BENCH_SEED.json", "output path")
	flag.Parse()

	// Pin to the real core count: the snapshot must record what the
	// hardware can do, not what an inherited GOMAXPROCS happened to allow.
	runtime.GOMAXPROCS(runtime.NumCPU())

	serialMs, serialOut := timeSuite(1)
	parallelMs, parallelOut := timeSuite(0) // 0 = GOMAXPROCS
	if serialOut != parallelOut {
		fmt.Fprintln(os.Stderr, "lightpc-benchseed: serial and parallel suite outputs diverged")
		os.Exit(1)
	}

	pdesSerialMs, pdesSerialOut := timePDES(1)
	pdesParMs, pdesParOut := timePDES(0) // 0 = GOMAXPROCS, clamped to islands
	if pdesSerialOut != pdesParOut {
		fmt.Fprintln(os.Stderr, "lightpc-benchseed: -p 1 and -p N PDES outputs diverged")
		os.Exit(1)
	}

	sweepRebuildMs, sweepForkMs, sweepRebuildOut, sweepForkOut, err := timeSweep()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightpc-benchseed: sweep cell: %v\n", err)
		os.Exit(1)
	}
	if sweepRebuildOut != sweepForkOut {
		fmt.Fprintln(os.Stderr, "lightpc-benchseed: rebuild and fork sweep outcomes diverged")
		os.Exit(1)
	}

	s := seed{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		SerialMs:       serialMs,
		ParallelMs:     parallelMs,
		SpeedupX:       serialMs / parallelMs,
		PDESSerialMs:   pdesSerialMs,
		PDESParallelMs: pdesParMs,
		PDESSpeedupX:   pdesSerialMs / pdesParMs,
		SweepRebuildMs: sweepRebuildMs,
		SweepForkMs:    sweepForkMs,
		SweepSpeedupX:  sweepRebuildMs / sweepForkMs,
	}

	// Root package: one iteration per figure benchmark (they run whole
	// experiment suites). internal/sim: the scheduler microbenchmarks, where
	// allocs/op is the number under regression watch (it must stay 0).
	// internal/obs: the disabled-instrument overhead benches, under the same
	// 0 allocs/op watch — a platform built without a tracer must pay nothing.
	// internal/linetab: the paged device-metadata tables, whose steady-state
	// Get/Set/Flight paths are also pinned at 0 allocs/op.
	// internal/energy: the meter charge paths — the disabled (nil) meter
	// benches are pinned at 0 allocs/op like the disabled obs instruments.
	// internal/linetab also carries the per-table Clone microbenches, and
	// internal/crashpoint the fork-vs-rebuild sweep-cell comparison.
	cmd := exec.Command("go", "test", "-run=^$", "-bench=.", "-benchtime=1x", "-benchmem", "-count=1", ".", "./internal/sim", "./internal/obs", "./internal/linetab", "./internal/energy", "./internal/crashpoint")
	// The bench subprocess must also see the real core count, both so the
	// parallel benches (which skip below 2) get their chance and so the
	// "-N" name suffix matches what parseBench strips.
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", runtime.NumCPU()))
	bout, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightpc-benchseed: go test -bench: %v\n%s", err, bout)
		os.Exit(1)
	}
	s.Benches = parseBench(string(bout))
	if len(s.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "lightpc-benchseed: no benchmark lines parsed")
		os.Exit(1)
	}

	j, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightpc-benchseed: %v\n", err)
		os.Exit(1)
	}
	j = append(j, '\n')
	if err := os.WriteFile(*out, j, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lightpc-benchseed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d benches on %d CPU(s), suite %.0fms serial / %.0fms at -j %d (%.2fx), pdes %.0fms serial / %.0fms at -p %d (%.2fx), sweep cell %.0fms rebuilt / %.0fms forked (%.2fx)\n",
		*out, len(s.Benches), s.NumCPU, s.SerialMs, s.ParallelMs, s.GOMAXPROCS, s.SpeedupX,
		s.PDESSerialMs, s.PDESParallelMs, s.GOMAXPROCS, s.PDESSpeedupX,
		s.SweepRebuildMs, s.SweepForkMs, s.SweepSpeedupX)
	if s.NumCPU < 2 {
		fmt.Println("note: single-CPU host — the -j and -p speedups above are nominal, not evidence of scaling")
	}
}
