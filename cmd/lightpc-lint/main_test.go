package main_test

// Smoke test: lightpc-lint builds, speaks the vettool protocol well enough
// for cmd/go, passes a clean package, and fails a package that calls
// time.Now() inside internal/.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVettoolSmoke(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}

	tmp := t.TempDir()
	tool := filepath.Join(tmp, "lightpc-lint")
	build := exec.Command(goTool, "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lightpc-lint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "m")
	writeFile(t, filepath.Join(mod, "go.mod"), "module m\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "internal", "ok", "ok.go"), `package ok

func Add(a, b int) int { return a + b }
`)
	writeFile(t, filepath.Join(mod, "internal", "wallclock", "wallclock.go"), `package wallclock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)

	vet := func(pkg string) (string, error) {
		cmd := exec.Command(goTool, "vet", "-vettool="+tool, pkg)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	if out, err := vet("./internal/ok"); err != nil {
		t.Errorf("clean package should vet clean, got: %v\n%s", err, out)
	}
	out, err := vet("./internal/wallclock")
	if err == nil {
		t.Errorf("wall-clock package should fail vet, got success:\n%s", out)
	}
	if !strings.Contains(out, "nodeterminism") || !strings.Contains(out, "time.Now") {
		t.Errorf("missing nodeterminism diagnostic in output:\n%s", out)
	}
}
