// Command lightpc-lint is the repository's static-analysis suite, run as a
// go vet tool:
//
//	go build -o bin/lightpc-lint ./cmd/lightpc-lint
//	go vet -vettool=$(pwd)/bin/lightpc-lint ./...
//
// (or simply `make lint`). It bundles ten analyzers that enforce, at vet
// time, the invariants the reproduction otherwise only checks dynamically:
//
//	nodeterminism  no wall-clock time or ambient randomness in internal/;
//	               stochastic and temporal behavior flows through sim.RNG
//	               and sim.Time (determinism_test.go's property, statically)
//	detreach       interprocedural companion to nodeterminism: an "impure"
//	               fact (wall clock, ambient rand, env reads, map-order
//	               escape) propagates through the call graph, so calls into
//	               transitively nondeterministic helpers are flagged too
//	epcutorder     in internal/sng and internal/checkpoint, the EP-cut
//	               commit is dominated by flush/sync, nothing persistent
//	               moves after the commit, and spend() deadlines are checked
//	persistorder   in journal/pmdk/psm, every persistent mutation in a
//	               logging function follows the journal append, and nothing
//	               persistent moves after a //lightpc:commitpoint
//	zeroalloc      functions annotated //lightpc:zeroalloc (and the pinned
//	               hot set behind BENCH_SEED.json's 0 allocs/op benches)
//	               contain no allocation sites and only call functions that
//	               carry the zeroalloc fact, transitively across packages
//	maporder       no golden output or simulated timing may depend on Go's
//	               randomized map iteration order
//	simtime        stdlib time.Duration (nanoseconds) never mixes with
//	               sim.Duration/sim.Time (picoseconds)
//	obsdeterminism internal/obs may never read the host clock or range a
//	               map, in any file including tests: exported trace and
//	               metric bytes are a pure function of sim time
//	hotpath        the device hot packages (pram, memctrl, psm) may not
//	               hold map[uint64]-keyed fields; per-line metadata lives
//	               on internal/linetab's paged tables
//	islandsafe     state annotated //lightpc:island is confined to its
//	               island: unannotated code may not touch it, island-local
//	               code may not select it by index (another island's state
//	               is only reachable through the barrier-exchange API), and
//	               island-local code may not call barrier-phase functions
//
// Findings can be suppressed in place with a reasoned directive:
//
//	expr //lint:allow <analyzer> <why this exception is sound>
//
// A directive that suppresses nothing is itself reported (as staleallow),
// so suppressions cannot outlive the code they excused.
package main

import (
	"repro/internal/lint/detreach"
	"repro/internal/lint/epcutorder"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/islandsafe"
	"repro/internal/lint/maporder"
	"repro/internal/lint/nodeterminism"
	"repro/internal/lint/obsdeterminism"
	"repro/internal/lint/persistorder"
	"repro/internal/lint/simtime"
	"repro/internal/lint/unitchecker"
	"repro/internal/lint/zeroalloc"
)

func main() {
	unitchecker.Main(
		nodeterminism.Analyzer,
		detreach.Analyzer,
		epcutorder.Analyzer,
		persistorder.Analyzer,
		zeroalloc.Analyzer,
		maporder.Analyzer,
		simtime.Analyzer,
		obsdeterminism.Analyzer,
		hotpath.Analyzer,
		islandsafe.Analyzer,
	)
}
