// Command lightpc-perfdiff compares two BENCH_SEED.json snapshots (see
// cmd/lightpc-benchseed) benchstat-style: one row per benchmark with the
// old/new ns/op and allocs/op and their deltas, flagging any benchmark whose
// time or allocation count regressed by more than a threshold.
//
// The snapshots are single-iteration runs, so the comparison is a smoke
// gate, not a statistics engine: CI runs it with time deltas report-only,
// and -strict turns regressions into a non-zero exit for local pre-merge
// checks.
//
// Allocation counts, unlike times, are deterministic, so -strict-zero-alloc
// promotes one class of regression to a hard failure even without -strict:
// any benchmark the baseline pins at 0 allocs/op that now allocates. (The
// percentage machinery cannot express 0 -> N, so without this flag such a
// regression passes silently.) CI runs with -strict-zero-alloc.
//
// Usage:
//
//	lightpc-perfdiff -old BENCH_SEED.json -new /tmp/new.json
//	lightpc-perfdiff -old BENCH_SEED.json -new /tmp/new.json -threshold 10 -strict
//	lightpc-perfdiff -old BENCH_SEED.json -new /tmp/new.json -strict-zero-alloc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchLine mirrors cmd/lightpc-benchseed's output schema. Snapshots from
// before the allocator columns existed decode with zero B/op and allocs/op;
// the comparison skips the alloc delta when both sides are zero.
type benchLine struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type seed struct {
	GoVersion      string      `json:"go_version"`
	NumCPU         int         `json:"num_cpu"`
	GOMAXPROCS     int         `json:"gomaxprocs"`
	SerialMs       float64     `json:"suite_serial_ms"`
	ParallelMs     float64     `json:"suite_parallel_ms"`
	PDESSerialMs   float64     `json:"pdes_serial_ms"`
	PDESParallelMs float64     `json:"pdes_parallel_ms"`
	Benches        []benchLine `json:"benches"`
}

func load(path string) (seed, error) {
	var s seed
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// deltaPct reports the relative change new-vs-old in percent; ok is false
// when the old value is zero (no baseline to compare against).
func deltaPct(oldV, newV float64) (float64, bool) {
	if oldV == 0 {
		return 0, false
	}
	return (newV - oldV) / oldV * 100, true
}

func fmtDelta(oldV, newV float64) string {
	d, ok := deltaPct(oldV, newV)
	if !ok {
		if newV == 0 {
			return "~"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", d)
}

func main() {
	var (
		oldPath    = flag.String("old", "BENCH_SEED.json", "baseline snapshot")
		newPath    = flag.String("new", "", "candidate snapshot (required)")
		threshold  = flag.Float64("threshold", 10, "regression threshold in percent")
		strict     = flag.Bool("strict", false, "exit non-zero when a regression exceeds the threshold")
		strictZero = flag.Bool("strict-zero-alloc", false, "exit non-zero when a benchmark pinned at 0 allocs/op now allocates")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "lightpc-perfdiff: -new is required")
		os.Exit(2)
	}

	oldSeed, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightpc-perfdiff: %v\n", err)
		os.Exit(1)
	}
	newSeed, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightpc-perfdiff: %v\n", err)
		os.Exit(1)
	}

	oldBy := make(map[string]benchLine, len(oldSeed.Benches))
	for _, b := range oldSeed.Benches {
		oldBy[b.Name] = b
	}

	fmt.Printf("%-34s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "time", "old allocs", "new allocs", "allocs")
	var regressions, zeroAllocBroken []string
	matched := make(map[string]bool, len(newSeed.Benches))
	for _, nb := range newSeed.Benches {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-34s %14s %14.0f %8s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		matched[nb.Name] = true
		allocDelta := "~"
		if ob.AllocsPerOp != 0 || nb.AllocsPerOp != 0 {
			allocDelta = fmtDelta(ob.AllocsPerOp, nb.AllocsPerOp)
		}
		fmt.Printf("%-34s %14.0f %14.0f %8s %10.0f %10.0f %8s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, fmtDelta(ob.NsPerOp, nb.NsPerOp),
			ob.AllocsPerOp, nb.AllocsPerOp, allocDelta)
		if d, ok := deltaPct(ob.NsPerOp, nb.NsPerOp); ok && d > *threshold {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %+.1f%%", nb.Name, d))
		}
		if d, ok := deltaPct(ob.AllocsPerOp, nb.AllocsPerOp); ok && d > *threshold {
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op %+.1f%%", nb.Name, d))
		}
		if ob.AllocsPerOp == 0 && nb.AllocsPerOp > 0 {
			zeroAllocBroken = append(zeroAllocBroken,
				fmt.Sprintf("%s: allocs/op 0 -> %.0f", nb.Name, nb.AllocsPerOp))
		}
	}
	for _, ob := range oldSeed.Benches {
		if !matched[ob.Name] {
			fmt.Printf("%-34s %14.0f %14s %8s\n", ob.Name, ob.NsPerOp, "-", "gone")
		}
	}

	if oldSeed.SerialMs > 0 && newSeed.SerialMs > 0 {
		fmt.Printf("\nsuite serial: %.0fms -> %.0fms (%s)   parallel (-j): %.0fms -> %.0fms (%s)\n",
			oldSeed.SerialMs, newSeed.SerialMs, fmtDelta(oldSeed.SerialMs, newSeed.SerialMs),
			oldSeed.ParallelMs, newSeed.ParallelMs, fmtDelta(oldSeed.ParallelMs, newSeed.ParallelMs))
	}
	if oldSeed.PDESSerialMs > 0 && newSeed.PDESSerialMs > 0 {
		fmt.Printf("pdes serial:  %.0fms -> %.0fms (%s)   parallel (-p): %.0fms -> %.0fms (%s)\n",
			oldSeed.PDESSerialMs, newSeed.PDESSerialMs, fmtDelta(oldSeed.PDESSerialMs, newSeed.PDESSerialMs),
			oldSeed.PDESParallelMs, newSeed.PDESParallelMs, fmtDelta(oldSeed.PDESParallelMs, newSeed.PDESParallelMs))
	}
	if oldSeed.NumCPU != 0 && newSeed.NumCPU != 0 && oldSeed.NumCPU != newSeed.NumCPU {
		fmt.Printf("note: snapshots ran on different core counts (%d vs %d) — wall-clock deltas are not comparable\n",
			oldSeed.NumCPU, newSeed.NumCPU)
	}

	fail := false
	sort.Strings(zeroAllocBroken)
	if len(zeroAllocBroken) > 0 {
		fmt.Printf("\n%d pinned 0-alloc benchmark(s) now allocate:\n", len(zeroAllocBroken))
		for _, r := range zeroAllocBroken {
			fmt.Printf("  ZERO-ALLOC REGRESSION %s\n", r)
		}
		if *strictZero || *strict {
			fail = true
		} else {
			fmt.Println("(report-only: pass -strict-zero-alloc to fail on these)")
		}
	}

	sort.Strings(regressions)
	if len(regressions) > 0 {
		fmt.Printf("\n%d regression(s) beyond %.0f%%:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Printf("  REGRESSION %s\n", r)
		}
		if *strict {
			fail = true
		} else {
			fmt.Println("(report-only: pass -strict to fail on regressions)")
		}
	} else {
		fmt.Printf("\nno regressions beyond %.0f%%\n", *threshold)
	}
	if fail {
		os.Exit(1)
	}
}
