// Command lightpc-sng demonstrates Stop-and-Go on a live simulated system:
// it boots the mini-OS, runs it for a while, pulls the power, shows the
// Stop decomposition against the PSU hold-up window, recovers with Go, and
// verifies that every parked process resumes at the exact EP-cut.
//
// Usage:
//
//	lightpc-sng
//	lightpc-sng -cores 16 -user 100 -kernelprocs 60 -devices 400 -psu server
//	lightpc-sng -holdup 2ms        # force a torn stop -> cold boot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kernel"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/sng"
)

func main() {
	var (
		cores   = flag.Int("cores", 8, "core count")
		user    = flag.Int("user", 72, "user processes")
		kprocs  = flag.Int("kernelprocs", 48, "kernel threads")
		devices = flag.Int("devices", 250, "dpm_list length")
		psuName = flag.String("psu", "atx", "psu: atx | server")
		holdup  = flag.Duration("holdup", 0, "override hold-up window (0 = PSU spec)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	cfg := kernel.DefaultConfig()
	cfg.Cores = *cores
	cfg.UserProcs = *user
	cfg.KernelProcs = *kprocs
	cfg.Devices = *devices
	cfg.Seed = *seed
	k := kernel.New(cfg)
	k.Tick(20)

	psu := power.ATX()
	if *psuName == "server" {
		psu = power.Server()
	}
	window := sim.Duration(psu.SpecHoldUp)
	if *holdup > 0 {
		window = sim.Duration(holdup.Nanoseconds()) * sim.Nanosecond
	}

	fmt.Printf("system: %d cores, %d processes (%d sleeping), %d devices\n",
		len(k.Cores), len(k.Procs), len(k.Sleepers()), len(k.Devices))
	checksum := k.ProcsChecksum()

	s := sng.New(k)
	fmt.Printf("\n-- power failure (hold-up window: %v, %s) --\n", window, psu.Name)
	rep := s.Stop(0, sim.Time(window))
	fmt.Printf("Drive-to-Idle: %-10v (%d sleepers woken, %d tasks parked)\n",
		rep.ProcessStop, rep.WokenSleepers, rep.ParkedTasks)
	fmt.Printf("device stop:   %-10v (%d devices, %d peripherals)\n",
		rep.DeviceStop, rep.StoppedDevices, rep.Peripherals)
	fmt.Printf("offline:       %-10v (%d cache lines flushed)\n",
		rep.Offline, rep.FlushedLines)
	fmt.Printf("total:         %-10v — completed: %v\n", rep.Total, rep.Completed)

	k.PowerLoss()
	fmt.Println("\n-- rails down; volatile state wiped --")

	grep, err := s.Go(0)
	if err != nil {
		fmt.Printf("Go: %v\n", err)
		fmt.Println("cold boot required (no committed EP-cut)")
		os.Exit(1)
	}
	fmt.Printf("Go: boot %v, cores %v, devices %v (%d), processes %v (%d)\n",
		grep.BootCheck, grep.CoreBringUp, grep.DeviceResume, grep.ResumedDevices,
		grep.ProcessResume, grep.ResumedTasks)
	fmt.Printf("recovery total: %v\n", grep.Total)

	// Verify exact resumption.
	for _, p := range k.Procs {
		if p.State == kernel.TaskRunnable || p.State == kernel.TaskRunning {
			p.RestoreContext()
		}
	}
	if got := k.ProcsChecksum(); got == checksum {
		fmt.Println("EP-cut verified: every process resumed with identical state ✓")
	} else {
		fmt.Println("EP-cut MISMATCH: state diverged ✗")
		os.Exit(1)
	}
}
