// Command lightpc-obs drives an instrumented Stop-and-Go scenario and
// exports what the observability layer recorded: a Chrome trace-event JSON
// timeline (open it in Perfetto or chrome://tracing), a Prometheus-text
// metrics snapshot, and an ASCII phase table against the PSU hold-up
// budget. All output is deterministic: same flags, same bytes.
//
// Usage:
//
//	lightpc-obs -trace out.json -metrics out.prom
//	lightpc-obs -platform full -workload Redis -seed 7 -trace redis.json
//	lightpc-obs -mode sweep -seeds 1,2,3,4 -j 4 -trace sweep.json
//	lightpc-obs -mode energy -workload Redis    # per-phase joule breakdown
//	lightpc-obs -check-trace out.json        # validate and exit
//	lightpc-obs -check-prom out.prom         # validate and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	lightpc "repro"
	"repro/internal/obs"
	"repro/internal/obs/drive"
	"repro/internal/sim"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lightpc-obs: "+format+"\n", args...)
	os.Exit(1)
}

func writeFile(path string, data []byte) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
}

func parseSeeds(s string) []uint64 {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			fatalf("bad seed %q: %v", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("no seeds in %q", s)
	}
	return out
}

func main() {
	var (
		mode     = flag.String("mode", "sng", "sng (one scenario) | sweep (one cell per seed) | energy (joule breakdown)")
		platform = flag.String("platform", "full", "platform: legacy | b | full")
		seed     = flag.Uint64("seed", 1, "simulation seed (sng mode)")
		seeds    = flag.String("seeds", "1,2,3,4", "comma-separated seeds (sweep mode)")
		jobs     = flag.Int("j", 1, "sweep workers (0 = GOMAXPROCS); output is identical at any level")
		cores    = flag.Int("cores", 8, "core count")
		user     = flag.Int("user", 72, "user processes")
		kprocs   = flag.Int("kernelprocs", 48, "kernel threads")
		devices  = flag.Int("devices", 250, "dpm_list length")
		ticks    = flag.Int("ticks", 20, "scheduler ticks before the power event")
		wl       = flag.String("workload", "", "Table II workload to run first (empty = none)")
		psu      = flag.String("psu", "atx", "psu: atx | server")
		holdup   = flag.Duration("holdup", 0, "override hold-up window (0 = PSU spec)")
		energyOn = flag.Bool("energy", false, "attach per-device joule meters (implied by -mode energy)")

		traceOut = flag.String("trace", "", "write Chrome trace-event JSON here")
		promOut  = flag.String("metrics", "", "write Prometheus text snapshot here")
		jsonOut  = flag.String("metrics-json", "", "write JSON metrics snapshot here")
		quiet    = flag.Bool("q", false, "suppress the phase table")

		checkTrace = flag.String("check-trace", "", "validate a Chrome trace JSON file and exit")
		checkProm  = flag.String("check-prom", "", "validate a Prometheus text file and exit")
	)
	flag.Parse()

	if *checkTrace != "" || *checkProm != "" {
		check(*checkTrace, *checkProm)
		return
	}

	var kind lightpc.Kind
	switch *platform {
	case "legacy":
		kind = lightpc.LegacyPC
	case "b":
		kind = lightpc.LightPCB
	case "full":
		kind = lightpc.LightPCFull
	default:
		fatalf("unknown platform %q (want legacy, b, or full)", *platform)
	}

	sc := drive.Scenario{
		Kind:        kind,
		Seed:        *seed,
		Cores:       *cores,
		UserProcs:   *user,
		KernelProcs: *kprocs,
		Devices:     *devices,
		Ticks:       *ticks,
		Workload:    *wl,
		PSU:         *psu,
		Holdup:      sim.Duration(holdup.Nanoseconds()) * sim.Nanosecond,
		Energy:      *energyOn || *mode == "energy",
	}

	switch *mode {
	case "sng":
		res, err := drive.SnG(sc)
		if err != nil {
			fatalf("%v", err)
		}
		if !*quiet {
			fmt.Print(res.PhaseTable())
			if sc.Energy {
				fmt.Print(res.EnergyTable())
			}
		}
		writeFile(*traceOut, res.ChromeTrace())
		writeFile(*promOut, res.Registry.PrometheusBytes())
		writeFile(*jsonOut, res.Registry.JSONBytes())
	case "energy":
		res, err := drive.SnG(sc)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(res.EnergyTable())
		writeFile(*traceOut, res.ChromeTrace())
		writeFile(*promOut, res.Registry.PrometheusBytes())
		writeFile(*jsonOut, res.Registry.JSONBytes())
	case "sweep":
		sw, err := drive.Sweep(sc, parseSeeds(*seeds), *jobs)
		if err != nil {
			fatalf("%v", err)
		}
		if !*quiet {
			fmt.Print(sw.PhaseTables())
			if sc.Energy {
				fmt.Print(sw.EnergyTables())
			}
		}
		writeFile(*traceOut, sw.ChromeTrace())
		writeFile(*promOut, sw.Prometheus())
	default:
		fatalf("unknown mode %q (want sng, sweep, or energy)", *mode)
	}
}

// check validates previously written artifacts (the obs-smoke CI step).
func check(tracePath, promPath string) {
	if tracePath != "" {
		data, err := os.ReadFile(tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			fatalf("%s: %v", tracePath, err)
		}
		fmt.Printf("%s: valid Chrome trace-event JSON\n", tracePath)
	}
	if promPath != "" {
		data, err := os.ReadFile(promPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := obs.ValidatePrometheus(data); err != nil {
			fatalf("%s: %v", promPath, err)
		}
		fmt.Printf("%s: valid Prometheus text exposition\n", promPath)
	}
}
